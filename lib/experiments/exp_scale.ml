open Workload
open Core

(* E18: the paper's evaluation scale.  The trace behind Table 1 has 150
   racks and 526 filtered coflows; every earlier experiment here ran at
   24-50 ports because the dense slot-by-slot simulator hit a wall far
   below that.  This experiment runs the full 12-algorithm grid at exactly
   that scale on the sparse, event-driven fabric, measures wall-clock
   throughput, and A/B-races the batched loop against the slot-by-slot one
   on identical instances (identical results, only [seconds] differs). *)

let ports = 150

let coflows = 526

let stretch_factor = 10

type entry = {
  order_name : string;
  fallback : string option;
      (** [Some order] when this row actually ran under a substitute
          order (today: HLP rows under H_rho after LP budget
          exhaustion); the substitute is also baked into [order_name]
          (["HLP(fallback:Hrho)"]) so no table or JSON downstream can
          attribute the numbers to the nominal algorithm *)
  case : Scheduler.case;
  twct : float;
  slots : int;
  matchings : int;
  seconds : float;
}

type ab = {
  ab_label : string;
  ab_slots : int;
  unbatched_s : float;
  batched_s : float;
  speedup : float;  (** unbatched wall time over batched wall time *)
  batched_slots_per_sec : float;
  decisions : int;  (** policy decisions the batched run needed *)
}

type stretch_row = {
  st_coflows : int;
  st_twct : float;
  st_slots : int;
  st_seconds : float;
  st_slots_per_sec : float;
}

type t = {
  t_ports : int;
  t_coflows : int;
  lp_note : string option;
      (** set when the HLP solve exhausted its pivot budget and the HLP
          rows fell back to the H_rho order *)
  grid : entry list;  (** 12 rows: {HA, Hrho, HLP} x {a, b, c, d} *)
  ab : ab list;
  stretch : stretch_row option;
}

let g_batched_tp = Obs.Counter.Gauge.make "scale.batched_slots_per_sec"

let g_unbatched_tp = Obs.Counter.Gauge.make "scale.unbatched_slots_per_sec"

(* The paper-scale instance: fb-like trace at 150 ports, unfiltered (the
   generator's size distribution stands in for the post-M0 population),
   paper-style random permutation weights. *)
let instance ?(ports = ports) (cfg : Config.t) ~coflows =
  let st = Random.State.make [| cfg.Config.seed; 0x5CA1E |] in
  let inst = Fb_like.generate ~ports ~coflows st in
  let wst = Random.State.make [| cfg.Config.seed; 0x5CA1E; 1 |] in
  Instance.with_weights inst (Weights.random_permutation wst coflows)

(* Deterministic pivot budget for the HLP order.  At 150 ports x 526
   coflows the interval LP has ~13k variables and a revised-simplex pivot
   costs milliseconds, so a full solve is far outside a CI budget; the
   budget is set to trip in a few seconds and the HLP rows then reuse
   H_rho — the same degradation the resilient chain applies — with the
   report carrying a note.  A future warm-started or decomposed solver
   can raise this without touching the experiment. *)
let lp_budget = 2_000

let solve_order ~lp_budget inst =
  match Lp_relax.solve_interval ~max_iterations:lp_budget inst with
  | lp -> (Ordering.by_lp lp, None)
  | exception Failure msg ->
    ( Ordering.by_load_over_weight inst,
      Some
        (Printf.sprintf
           "HLP order fell back to H_rho: LP budget (%d pivots) exhausted \
            (%s)"
           lp_budget msg) )

let run ?(stretch = false) ?(jobs = 1) ?ports:(ports' = ports)
    ?(coflows = coflows) ?(lp_budget = lp_budget) (cfg : Config.t) =
  Obs.Span.with_ "exp.scale" @@ fun () ->
  let inst = instance ~ports:ports' cfg ~coflows in
  let hlp_order, lp_note = solve_order ~lp_budget inst in
  (* a fallback must be visible in the row label itself, not only in the
     prose note: downstream ratio tables select rows by [order_name] *)
  let hlp_name, hlp_fallback =
    match lp_note with
    | None -> ("HLP", None)
    | Some _ -> ("HLP(fallback:Hrho)", Some "Hrho")
  in
  let orders =
    [ ("HA", None, Ordering.arrival inst);
      ("Hrho", None, Ordering.by_load_over_weight inst);
      (hlp_name, hlp_fallback, hlp_order);
    ]
  in
  (* the 12-entry grid, batched; independent simulations, one job each *)
  let grid =
    Engine.run_many ~jobs
      (List.concat_map
         (fun (order_name, fallback, order) ->
           List.map
             (fun case () ->
               let r = Scheduler.run ~case inst order in
               { order_name;
                 fallback;
                 case;
                 twct = r.Engine.twct;
                 slots = r.Engine.slots;
                 matchings = r.Engine.matchings;
                 seconds = r.Engine.seconds;
               })
             Scheduler.all_cases)
         orders)
  in
  (* A/B: same policy, batch on vs off, sequentially (wall-clock must not
     share cores).  Greedy H_rho exercises Policy.of_priority's batcher;
     case (d) exercises the scheduler's BvN-queue batcher. *)
  let hrho = Ordering.by_load_over_weight inst in
  let ab_specs =
    [ ("greedy H_rho", fun batch -> Baselines.(Engine.run ~batch inst (greedy_policy hrho)));
      ("grouped H_rho (d)",
       fun batch -> Scheduler.run ~case:Scheduler.Group_backfill ~batch inst hrho);
    ]
  in
  let batch_steps = Obs.Counter.make "sim.batch_steps" in
  let ab =
    List.map
      (fun (ab_label, go) ->
        let unbatched = go false in
        let d0 = Obs.Counter.value batch_steps in
        let batched = go true in
        let decisions = Obs.Counter.value batch_steps - d0 in
        assert (batched.Engine.twct = unbatched.Engine.twct);
        assert (batched.Engine.slots = unbatched.Engine.slots);
        let speedup =
          if batched.Engine.seconds > 0.0 then
            unbatched.Engine.seconds /. batched.Engine.seconds
          else Float.infinity
        in
        let batched_slots_per_sec =
          if batched.Engine.seconds > 0.0 then
            float_of_int batched.Engine.slots /. batched.Engine.seconds
          else Float.infinity
        in
        if batched.Engine.seconds > 0.0 then
          Obs.Counter.Gauge.set g_batched_tp batched_slots_per_sec;
        if unbatched.Engine.seconds > 0.0 then
          Obs.Counter.Gauge.set g_unbatched_tp
            (float_of_int unbatched.Engine.slots /. unbatched.Engine.seconds);
        { ab_label;
          ab_slots = batched.Engine.slots;
          unbatched_s = unbatched.Engine.seconds;
          batched_s = batched.Engine.seconds;
          speedup;
          batched_slots_per_sec;
          decisions;
        })
      ab_specs
  in
  let stretch =
    if not stretch then None
    else begin
      let n = coflows * stretch_factor in
      let big = instance ~ports:ports' cfg ~coflows:n in
      let order = Ordering.by_load_over_weight big in
      let r = Baselines.(Engine.run big (greedy_policy order)) in
      Some
        { st_coflows = n;
          st_twct = r.Engine.twct;
          st_slots = r.Engine.slots;
          st_seconds = r.Engine.seconds;
          st_slots_per_sec =
            (if r.Engine.seconds > 0.0 then
               float_of_int r.Engine.slots /. r.Engine.seconds
             else Float.infinity);
        }
    end
  in
  { t_ports = ports'; t_coflows = coflows; lp_note; grid; ab; stretch }

let render ?stretch ?jobs ?ports ?coflows ?lp_budget cfg =
  let t = run ?stretch ?jobs ?ports ?coflows ?lp_budget cfg in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Report.table
       ~title:
         (Printf.sprintf
            "E18 scale grid: %d ports, %d coflows (paper scale), batched \
             event-driven simulator"
            t.t_ports t.t_coflows)
       ~header:[ "order"; "case"; "TWCT"; "slots"; "matchings"; "seconds" ]
       (List.map
          (fun e ->
            [ e.order_name;
              Scheduler.case_name e.case;
              Report.f2 e.twct;
              string_of_int e.slots;
              string_of_int e.matchings;
              Printf.sprintf "%.3f" e.seconds;
            ])
          t.grid));
  (match t.lp_note with
  | Some note -> Buffer.add_string b (Printf.sprintf "note: %s\n" note)
  | None -> ());
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Report.table
       ~title:
         "E18 A/B: event-driven batching vs slot-by-slot (identical \
          schedules, wall clock only)"
       ~header:
         [ "policy";
           "slots";
           "decisions";
           "slot-by-slot (s)";
           "batched (s)";
           "speedup";
           "batched slots/sec";
         ]
       (List.map
          (fun a ->
            [ a.ab_label;
              string_of_int a.ab_slots;
              string_of_int a.decisions;
              Printf.sprintf "%.3f" a.unbatched_s;
              Printf.sprintf "%.3f" a.batched_s;
              Printf.sprintf "%.1fx" a.speedup;
              Printf.sprintf "%.0f" a.batched_slots_per_sec;
            ])
          t.ab));
  (match t.stretch with
  | None -> ()
  | Some s ->
    Buffer.add_char b '\n';
    Buffer.add_string b
      (Report.table
         ~title:
           (Printf.sprintf "E18 stretch: %dx the paper's coflow count"
              stretch_factor)
         ~header:[ "coflows"; "TWCT"; "slots"; "seconds"; "slots/sec" ]
         [ [ string_of_int s.st_coflows;
             Report.f2 s.st_twct;
             string_of_int s.st_slots;
             Printf.sprintf "%.3f" s.st_seconds;
             Printf.sprintf "%.0f" s.st_slots_per_sec;
           ]
         ]));
  Buffer.contents b
