type diff_opts = {
  old_path : string;
  new_path : string;
  threshold : float;
  time_threshold : float option;
  diff_json : string option;
}

type t = {
  scale : Config.scale;
  jobs : int;
  json : string option;
  profile : string option;
  trace : string option;
  diff : diff_opts option;
  modes : string list;
}

let usage =
  "usage: main.exe [MODE ...] [--scale quick|default|large] [--jobs N]\n\
  \       [--json PATH] [--profile [PATH]] [--trace [PATH]]\n\
  \       main.exe obs-diff OLD NEW [--threshold PCT] [--time-threshold PCT]\n\
  \       [--json PATH]"

let default_profile_path = "PROFILE.json"

let default_trace_path = "TRACE.json"

let is_flag s = String.length s > 0 && s.[0] = '-'

(* [--profile] and [--trace] take an {e optional} PATH: a following token is
   consumed only when it is neither a flag nor a mode name, so
   "--profile --json out.json" profiles to the default path instead of
   eating "--json". *)
let optional_path ~is_mode rest =
  match rest with
  | p :: tl when (not (is_flag p)) && not (is_mode p) -> (Some p, tl)
  | _ -> (None, rest)

(* A required argument must exist and must not look like a flag — a flag
   here means the real argument was forgotten. *)
let required_arg flag rest =
  match rest with
  | v :: tl when not (is_flag v) -> Ok (v, tl)
  | _ -> Error (Printf.sprintf "%s requires an argument" flag)

let parse_float flag v =
  match float_of_string_opt v with
  | Some f when f >= 0.0 -> Ok f
  | _ -> Error (Printf.sprintf "%s: %S is not a non-negative number" flag v)

let parse_diff args =
  let rec go acc_paths threshold time_threshold diff_json = function
    | [] -> (
      match List.rev acc_paths with
      | [ old_path; new_path ] ->
        Ok { old_path; new_path; threshold; time_threshold; diff_json }
      | paths ->
        Error
          (Printf.sprintf "obs-diff takes exactly OLD and NEW paths, got %d"
             (List.length paths)))
    | "--threshold" :: rest -> (
      match required_arg "--threshold" rest with
      | Error e -> Error e
      | Ok (v, tl) -> (
        match parse_float "--threshold" v with
        | Error e -> Error e
        | Ok f -> go acc_paths f time_threshold diff_json tl))
    | "--time-threshold" :: rest -> (
      match required_arg "--time-threshold" rest with
      | Error e -> Error e
      | Ok (v, tl) -> (
        match parse_float "--time-threshold" v with
        | Error e -> Error e
        | Ok f -> go acc_paths threshold (Some f) diff_json tl))
    | "--json" :: rest -> (
      match required_arg "--json" rest with
      | Error e -> Error e
      | Ok (p, tl) -> go acc_paths threshold time_threshold (Some p) tl)
    | f :: _ when is_flag f ->
      Error (Printf.sprintf "obs-diff: unknown flag %S" f)
    | p :: rest -> go (p :: acc_paths) threshold time_threshold diff_json rest
  in
  go [] 10.0 None None args

let parse ~is_mode args =
  let rec go acc = function
    | [] -> Ok acc
    | "obs-diff" :: rest ->
      (* obs-diff owns the remaining argv: OLD NEW and its thresholds *)
      Result.map (fun d -> { acc with diff = Some d }) (parse_diff rest)
    | "--scale" :: rest -> (
      match required_arg "--scale" rest with
      | Error e -> Error e
      | Ok (s, tl) -> (
        match Config.scale_of_string s with
        | Some scale -> go { acc with scale } tl
        | None -> Error (Printf.sprintf "unknown scale %S" s)))
    | "--jobs" :: rest -> (
      match required_arg "--jobs" rest with
      | Error e -> Error e
      | Ok (v, tl) -> (
        match int_of_string_opt v with
        | Some jobs when jobs >= 1 -> go { acc with jobs } tl
        | _ ->
          Error (Printf.sprintf "--jobs: %S is not a positive integer" v)))
    | "--json" :: rest -> (
      match required_arg "--json" rest with
      | Error e -> Error e
      | Ok (p, tl) -> go { acc with json = Some p } tl)
    | "--profile" :: rest ->
      let path, tl = optional_path ~is_mode rest in
      go
        { acc with
          profile = Some (Option.value ~default:default_profile_path path)
        }
        tl
    | "--trace" :: rest ->
      let path, tl = optional_path ~is_mode rest in
      go
        { acc with
          trace = Some (Option.value ~default:default_trace_path path)
        }
        tl
    | f :: _ when is_flag f -> Error (Printf.sprintf "unknown flag %S" f)
    | m :: rest when is_mode m -> go { acc with modes = acc.modes @ [ m ] } rest
    | m :: _ -> Error (Printf.sprintf "unknown mode %S" m)
  in
  go
    { scale = Config.Default;
      jobs = 1;
      json = None;
      profile = None;
      trace = None;
      diff = None;
      modes = [];
    }
    args
