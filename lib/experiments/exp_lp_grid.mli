(** E11 — interval-granularity ablation (the paper's §4.3 asks to
    "systematically measure the benefit of the time-indexed versus the
    interval-indexed linear program"; this experiment does so).

    For a sweep of grid bases [a], solve the generalised interval relaxation
    with points [ceil (a^(l-1))], and report: size of the LP, simplex
    effort, the lower bound it certifies, and the TWCT of the grouped
    schedule driven by its ordering.  Base 2 is the paper's (LP); as
    [a -> 1] the program converges to (LP-EXP). *)

type row = {
  base : float;
  intervals : int;
  iterations : int;
  refactors : int;  (** basis factorizations spent by the solve *)
  solve_seconds : float;
  lower_bound : float;
  twct : float;  (** case (d) schedule under the resulting order *)
}

val run : ?jobs:int -> ?bases:float list -> Config.t -> row list
(** Default bases: [1.2; 1.5; 2.0; 3.0; 4.0].  Uses the largest-filter
    random-weights workload of the configuration.  Each base is an
    independent cold solve; [jobs] (default 1) spreads the sweep over that
    many domains via {!Core.Engine.run_many} with identical rows at any job
    count. *)

val render : ?jobs:int -> ?bases:float list -> Config.t -> string
