(** E19: the algorithm arena — every scheduler in the repo raced on
    shared seeds and ranked against a certified lower bound.

    Two legs:

    - {b Small leg} (LP-EXP-sized, with release dates): the LP-free
      contenders ({!Harness.lp_free_arena} — Shafiee–Ghaderi, Chen,
      primal-dual, H_rho / H_size / H_A greedy), the paper's full
      [H_LP (d)] stack, and the slot-adaptive baselines (SEBF+MADD,
      MaxWeight, round-robin), all measured against the time-indexed
      LP-EXP lower bound.  The run {e asserts} that every
      approximation-guaranteed entry keeps [TWCT / LP-EXP <= factor]
      (stronger than the theorems, which bound against OPT — LP-EXP is
      below OPT — but comfortably true in practice and a tight tripwire
      for regressions).
    - {b Scale leg} (the E18 instance, default 150 ports x 526
      coflows): the LP-free contenders plus the budgeted [H_LP] — which
      at this scale falls back to H_rho and is tagged
      ["H_LP(fallback:H_rho)"] with {!row.fallback} set, never silently.
      The bound is the isolation lower bound
      [sum_k w_k (r_k + rho (D_k))] (cheap and certified, unlike the
      LPs, which cannot run here); the run asserts every guaranteed
      entry stays within [factor x best-TWCT], sound because the best
      measured TWCT is itself an upper bound on OPT.

    Each row carries a decision count and per-decision wall time,
    published as [arena.<leg>.<algo>.decision_us] gauges (wall-time, so
    informational in obs-diff). *)

type row = {
  algo : string;
  fallback : string option;
      (** substitute order actually used, as in {!Exp_scale.entry} *)
  guarantee : float option;  (** proven (or claimed) approximation factor *)
  twct : float;
  ratio : float;  (** TWCT over the leg's lower bound; [nan] if bound 0 *)
  slots : int;
  mean_c : float;
  p95_c : int;
  decisions : int;  (** stepper invocations (batched or not) *)
  decision_us : float;  (** wall microseconds per decision *)
  seconds : float;
}

type leg = {
  l_label : string;
  l_ports : int;
  l_coflows : int;
  l_bound_name : string;
  l_bound : float;
  l_rows : row list;  (** ranked by ascending TWCT *)
}

type t = { small : leg; scale : leg }

val run :
  ?jobs:int ->
  ?filter:int ->
  ?small:int * int ->
  ?scale:int * int ->
  ?scale_lp_budget:int ->
  Config.t ->
  t
(** [small] / [scale] are (ports, coflows) overrides — defaults
    [(cfg.lpexp_ports, cfg.lpexp_coflows)] and
    [({!Exp_scale.ports}, {!Exp_scale.coflows})]; tests shrink the scale
    leg.  [scale_lp_budget] is the H_LP pivot budget on the scale leg
    (default 2000, as in E18).  [filter] applies an M0 filter to the
    small-leg instance before racing — an empty result makes every
    completion set empty, and the first statistics call then raises an
    [Invalid_argument] naming the algorithm and leg (see {!Core.Metrics}).
    [jobs] distributes the per-algorithm simulations over domains.

    @raise Failure when a ratio assertion fails, naming the algorithm,
    measured ratio and permitted factor. *)

val render : t -> string

val json : t -> string
(** The same content as {!render} as a single JSON object
    ([{"experiment":"E19", "legs":[...]}]) for the CI artifact. *)
