(** E12 — online vs offline under arrivals: how much is the offline LP
    order worth when coflows stream in?  Compares the paper's offline
    Algorithm 2 (which knows the whole instance up front) against the
    non-clairvoyant online rules of {!Core.Online} and the
    request/grant decentralized schedulers of {!Core.Decentralized} on the
    release-date workload, reporting both the weighted completion objective
    and the weighted flow time the paper's conclusion highlights. *)

type row = {
  algo : string;
  twct : float;
  twft : float;  (** total weighted flow time, [sum w (C - r)] *)
  makespan : int;
}

val run : ?jobs:int -> Config.t -> row list * float
(** Rows plus the interval-LP lower bound on the offline TWCT.  [jobs]
    (default 1) spreads the per-algorithm simulations over that many
    domains via {!Core.Engine.run_many}; rows are identical at any job
    count. *)

val render : ?jobs:int -> Config.t -> string
