open Workload
open Core
open Faults

type entry = {
  primary : Resilient.tier;
  result : Resilient.result;
  audit_ok : bool;
}

type row = { intensity : float; plan : Fault_plan.t; entries : entry list }

(* The sweep re-solves the residual LP at every fault boundary, so the
   instance is capped independently of --scale to keep E16 interactive;
   the fault model, not raw size, is what is under study here. *)
let instance (cfg : Config.t) =
  let cfg =
    { cfg with Config.ports = min cfg.Config.ports 14; coflows = min cfg.Config.coflows 100 }
  in
  let inst =
    Instance.filter_m0 (Harness.base_instance cfg) (max 2 (cfg.Config.ports / 3))
  in
  let n = Instance.num_coflows inst in
  let st = Random.State.make [| cfg.Config.seed; 0xFA17 |] in
  Instance.with_weights inst (Weights.random_permutation st n)

(* Fault windows are drawn against the expected busy span of the schedule,
   not the naive horizon (max release + total units), which is a factor
   [ports] too long for multi-port instances. *)
let fault_horizon inst =
  let units = Instance.total_units inst in
  let max_release =
    Array.fold_left max 0 (Instance.releases inst)
  in
  max_release + max 8 (2 * units / Instance.ports inst)

(* Deterministic sweep config: pivot budget instead of a wall-clock
   deadline, so replaying a seed gives byte-identical audit logs. *)
let sweep_config primary =
  { Resilient.default_config with
    Resilient.primary;
    lp_deadline = None;
    lp_max_iterations = 60_000;
    lp_retries = 1;
  }

let plan_for (cfg : Config.t) inst ~intensity ~index =
  let st = Random.State.make [| cfg.Config.seed; 0xFA17; index |] in
  Fault_plan.random ~intensity ~ports:(Instance.ports inst)
    ~coflows:(Instance.num_coflows inst) ~horizon:(fault_horizon inst) st

let run ?(intensities = [ 0.0; 0.5; 1.0; 2.0 ]) (cfg : Config.t) =
  let inst = instance cfg in
  List.mapi
    (fun index intensity ->
      let plan = plan_for cfg inst ~intensity ~index in
      let entries =
        List.map
          (fun primary ->
            let result =
              Resilient.run ~config:(sweep_config primary) ~plan inst
            in
            let audit_ok = Audit.check ~plan result.Resilient.audit = Ok () in
            { primary; result; audit_ok })
          [ Resilient.Arrival; Resilient.Rho; Resilient.Lp ]
      in
      { intensity; plan; entries })
    intensities

let find row primary =
  List.find (fun e -> e.primary = primary) row.entries

let twct row primary = (find row primary).result.Resilient.twct

let tier_slots result t =
  try List.assoc t result.Resilient.tier_slots with Not_found -> 0

(* ---------- degradation-chain demonstration ---------- *)

type demo = {
  label : string;
  demo_plan : Fault_plan.t;
  demo_result : Resilient.result;
  demo_audit_ok : bool;
}

let chain_demo (cfg : Config.t) =
  let inst = instance cfg in
  let h = fault_horizon inst in
  let scenario label ?(config = sweep_config Resilient.Lp) events =
    let demo_plan = Fault_plan.make events in
    let demo_result = Resilient.run ~config ~plan:demo_plan inst in
    { label;
      demo_plan;
      demo_result;
      demo_audit_ok = Audit.check ~plan:demo_plan demo_result.Resilient.audit = Ok ();
    }
  in
  [ scenario "fault-free (H_LP throughout)" [];
    scenario "LP outage + stats outage windows"
      [ Fault_plan.Solver_outage { from_ = h / 4; until = h / 2; full = false };
        Fault_plan.Solver_outage { from_ = h / 2; until = h; full = true };
      ];
    scenario "solver deadline 0s (every LP solve times out)"
      ~config:
        { (sweep_config Resilient.Lp) with
          Resilient.lp_deadline = Some 0.0;
          lp_retries = 1;
        }
      [ Fault_plan.Solver_outage { from_ = h / 2; until = h; full = true } ];
  ]

(* ---------- rendering ---------- *)

let render ?intensities cfg =
  let rows = run ?intensities cfg in
  let base primary =
    match rows with
    | first :: _ -> twct first primary
    | [] -> nan
  in
  let sweep =
    Report.table
      ~title:
        "Fault-intensity sweep: seeded fault plans (port outages, link \
         slowdowns, core degradation, stragglers, delayed releases, solver \
         outages), resilient greedy service; 'vs 0' is TWCT relative to \
         the same ordering fault-free"
      ~header:
        [ "intensity"; "events"; "TWCT H_A"; "vs 0"; "TWCT H_rho"; "vs 0";
          "TWCT H_LP"; "vs 0"; "audit" ]
      (List.map
         (fun row ->
           let cell primary =
             [ Report.f2 (twct row primary);
               Report.f2 (twct row primary /. base primary);
             ]
           in
           [ Report.f2 row.intensity;
             string_of_int (List.length (Fault_plan.events row.plan)) ]
           @ cell Resilient.Arrival @ cell Resilient.Rho @ cell Resilient.Lp
           @ [ (if List.for_all (fun e -> e.audit_ok) row.entries then "ok"
                else "FAIL") ])
         rows)
  in
  let diagnostics =
    Report.table
      ~title:
        "H_LP chain diagnostics per intensity: which tier served each slot, \
         re-planning rounds, LP attempts lost to budget/outage"
      ~header:
        [ "intensity"; "slots"; "lp"; "rho"; "arrival"; "replans";
          "lp failures" ]
      (List.map
         (fun row ->
           let r = (find row Resilient.Lp).result in
           [ Report.f2 row.intensity;
             string_of_int r.Resilient.slots;
             string_of_int (tier_slots r Resilient.Lp);
             string_of_int (tier_slots r Resilient.Rho);
             string_of_int (tier_slots r Resilient.Arrival);
             string_of_int r.Resilient.replans;
             string_of_int r.Resilient.lp_failures;
           ])
         rows)
  in
  let demo =
    Report.table
      ~title:
        "Degradation chain H_LP -> H_rho -> H_A under injected solver \
         faults (same instance, fault-free network)"
      ~header:
        [ "scenario"; "slots"; "lp"; "rho"; "arrival"; "replans";
          "lp failures"; "TWCT"; "audit" ]
      (List.map
         (fun d ->
           let r = d.demo_result in
           [ d.label;
             string_of_int r.Resilient.slots;
             string_of_int (tier_slots r Resilient.Lp);
             string_of_int (tier_slots r Resilient.Rho);
             string_of_int (tier_slots r Resilient.Arrival);
             string_of_int r.Resilient.replans;
             string_of_int r.Resilient.lp_failures;
             Report.f2 r.Resilient.twct;
             (if d.demo_audit_ok then "ok" else "FAIL");
           ])
         (chain_demo cfg))
  in
  sweep ^ "\n" ^ diagnostics ^ "\n" ^ demo
