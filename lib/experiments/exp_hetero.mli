(** E21: heterogeneous multi-fabric arena — the LP-free contenders plus
    {!Core.Chen_hetero} raced over [k] parallel fabrics ([k] in 1, 2, 4)
    with rate skews 1:1, 4:1 and 10:1, each leg ranked against the
    rate-aware isolation lower bound

    {v sum_k w_k (r_k + ceil (rho (D_k) / S)),   S = sum of fabric rates v}

    (every coflow still needs [rho / S] slots alone on its bottleneck
    port once released, whatever the routing).  The run {e asserts} that
    no policy beats the bound on any leg.

    A final fault leg takes the {e fast} fabric of a 4:1 two-fabric net
    down mid-run ({!Faults.Fault_plan.Fabric_down}) and drains the
    residual through {!Core.Resilient} on the surviving fabric: the run
    asserts completion, a clean independent audit
    ({!Faults.Audit.check} with per-fabric constraints), re-planning at
    both outage boundaries, and that no slot inside the outage window
    routed anything over the dead fabric. *)

type row = {
  algo : string;
  twct : float;
  ratio : float;  (** TWCT over the leg's rate-aware isolation bound *)
  slots : int;
  seconds : float;
}

type leg = {
  l_label : string;
  l_rates : int list;  (** per-fabric rates, fabric 0 first *)
  l_bound : float;
  l_rows : row list;  (** ranked by ascending TWCT *)
}

type fault_result = {
  f_window : int * int;  (** outage interval [from, until) *)
  f_twct : float;
  f_slots : int;
  f_replans : int;
  f_completed : bool;
  f_audit_ok : bool;
  f_outage_clean : bool;
      (** no transfer inside the window rode the downed fabric *)
  f_served_during_outage : bool;
      (** the surviving fabric kept moving data inside the window *)
}

type t = { legs : leg list; fault : fault_result }

val run : ?jobs:int -> Config.t -> t
(** @raise Failure when a policy beats a leg's lower bound or the fault
    leg fails any of its certification checks. *)

val render : t -> string

val json : t -> string
(** [{"experiment":"E21", "legs":[...], "fault":{...}}] for the CI
    artifact re-check. *)
