(** E18: the paper's evaluation scale — 150 ports, 526 coflows.

    Runs the full 12-algorithm grid ({H_A, H_rho, H_LP} x cases (a)-(d))
    on an fb-like trace at exactly the paper's scale, which the dense
    slot-by-slot simulator could not reach, and measures the win of the
    sparse event-driven fabric directly: every grid row reports wall-clock
    seconds, and an A/B section re-runs representative policies with
    batching forced off on the same instance — same TWCT, slots and
    matchings (asserted), only the wall clock differs.  The measured
    batched throughput is published on the [scale.batched_slots_per_sec] /
    [scale.unbatched_slots_per_sec] gauges (informational in obs-diff,
    like all wall-time metrics).

    The H_LP order runs under a fixed deterministic pivot budget; if the
    solve exhausts it the HLP rows fall back to H_rho and the report
    carries a note — the experiment always completes.  Fallback rows are
    also tagged structurally: their [order_name] becomes
    ["HLP(fallback:Hrho)"] and [entry.fallback] names the substitute, so
    downstream consumers (the E19 arena's ratio tables in particular)
    can never mistake H_rho numbers for H_LP.

    The [stretch] flag adds a 10x-coflow-count run (5260 coflows, batched
    greedy) — the scale the millions-of-coflows soak roadmap item needs. *)

val ports : int

val coflows : int

val stretch_factor : int

type entry = {
  order_name : string;
      (** ["HA"] | ["Hrho"] | ["HLP"] | ["HLP(fallback:Hrho)"] *)
  fallback : string option;
      (** the order actually used when the nominal one was unavailable *)
  case : Core.Scheduler.case;
  twct : float;
  slots : int;
  matchings : int;
  seconds : float;
}

type ab = {
  ab_label : string;
  ab_slots : int;
  unbatched_s : float;
  batched_s : float;
  speedup : float;  (** unbatched wall time over batched wall time *)
  batched_slots_per_sec : float;
  decisions : int;  (** policy decisions the batched run needed *)
}

type stretch_row = {
  st_coflows : int;
  st_twct : float;
  st_slots : int;
  st_seconds : float;
  st_slots_per_sec : float;
}

type t = {
  t_ports : int;
  t_coflows : int;
  lp_note : string option;
  grid : entry list;
  ab : ab list;
  stretch : stretch_row option;
}

val instance : ?ports:int -> Config.t -> coflows:int -> Workload.Instance.t
(** The paper-scale fb-like instance (deterministic in the seed;
    paper-style random-permutation weights).  [ports] defaults to
    {!ports}; the E19 arena reuses this generator so its scale leg races
    on exactly the E18 population. *)

val run :
  ?stretch:bool ->
  ?jobs:int ->
  ?ports:int ->
  ?coflows:int ->
  ?lp_budget:int ->
  Config.t ->
  t
(** [jobs] parallelizes the 12 grid simulations; the A/B timing runs are
    always sequential (wall-clock must not share cores).  [ports],
    [coflows] and [lp_budget] default to the paper scale ({!ports},
    {!coflows}, 2000 pivots); tests shrink them to exercise both the
    full-solve and the budget-exhausted fallback paths cheaply. *)

val render :
  ?stretch:bool ->
  ?jobs:int ->
  ?ports:int ->
  ?coflows:int ->
  ?lp_budget:int ->
  Config.t ->
  string
