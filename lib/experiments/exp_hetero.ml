open Workload
open Core
open Switchsim
open Faults

type row = {
  algo : string;
  twct : float;
  ratio : float;
  slots : int;
  seconds : float;
}

type leg = {
  l_label : string;
  l_rates : int list;
  l_bound : float;
  l_rows : row list;
}

type fault_result = {
  f_window : int * int;
  f_twct : float;
  f_slots : int;
  f_replans : int;
  f_completed : bool;
  f_audit_ok : bool;
  f_outage_clean : bool;
  f_served_during_outage : bool;
}

type t = { legs : leg list; fault : fault_result }

(* Same workload construction as E15: the first-filter fb-like trace with
   seeded random-permutation weights, so the hetero tables are directly
   comparable with the oversubscription sweep. *)
let instance (cfg : Config.t) =
  let inst =
    Instance.filter_m0 (Harness.base_instance cfg)
      (List.nth cfg.Config.filters 0)
  in
  let n = Instance.num_coflows inst in
  let wst = Random.State.make [| cfg.Config.seed; 0x4E7 |] in
  Instance.with_weights inst (Weights.random_permutation wst n)

(* [sum_k w_k (r_k + ceil (rho_k / S))]: a coflow's bottleneck port moves
   at most [S] units per slot even with every fabric to itself, so it
   needs [ceil (rho / S)] whole slots after release. *)
let isolation_bound ~total_rate inst =
  Array.fold_left
    (fun acc c ->
      let rho = Matrix.Mat.load c.Instance.demand in
      acc
      +. (c.Instance.weight
         *. float_of_int
              (c.Instance.release + ((rho + total_rate - 1) / total_rate))))
    0.0 (Instance.coflows inst)

let sweep =
  [ ("k=1", [ 1 ]);
    ("k=2 1:1", [ 1; 1 ]);
    ("k=2 4:1", [ 4; 1 ]);
    ("k=2 10:1", [ 10; 1 ]);
    ("k=4 1:1", [ 1; 1; 1; 1 ]);
    ("k=4 4:1", [ 4; 1; 1; 1 ]);
    ("k=4 10:1", [ 10; 1; 1; 1 ]);
  ]

let run_leg ~jobs ~label ~rates inst =
  let ports = Instance.ports inst in
  let net = Net.uniform ~ports ~rates in
  let bound = isolation_bound ~total_rate:(Net.total_rate net) inst in
  let contenders =
    List.map (fun (name, _, p) -> (name, p)) (Harness.lp_free_arena inst)
    @ [ ("Chen-hetero", Chen_hetero.policy ~net inst) ]
  in
  let results =
    Engine.run_many ~jobs
      (List.map
         (fun (name, policy) () ->
           let sim =
             Simulator.create ~net ~ports (Instance.demands inst)
           in
           (name, Engine.run ~sim inst policy))
         contenders)
  in
  let rows =
    List.map
      (fun (algo, r) ->
        { algo;
          twct = r.Engine.twct;
          ratio = (if bound > 0.0 then r.Engine.twct /. bound else Float.nan);
          slots = r.Engine.slots;
          seconds = r.Engine.seconds;
        })
      results
    |> List.sort (fun a b ->
           match compare a.twct b.twct with
           | 0 -> compare a.algo b.algo
           | c -> c)
  in
  List.iter
    (fun row ->
      if bound > 0.0 && row.twct +. 1e-6 < bound then
        failwith
          (Printf.sprintf
             "E21 %s: %s TWCT %.2f beats the rate-aware isolation bound %.2f \
              — bound or routing is wrong"
             label row.algo row.twct bound))
    rows;
  { l_label = label; l_rates = rates; l_bound = bound; l_rows = rows }

(* The fault leg: a 4:1 two-fabric net loses its fast fabric mid-run and
   the resilient loop (H_rho primary — no LP cost) re-plans the residual
   onto the survivor.  Certification is independent of the serving loop:
   the audit log is re-checked with per-fabric constraints and scanned
   for any transfer that rode the dead fabric inside the window. *)
let run_fault inst =
  let ports = Instance.ports inst in
  let net = Net.uniform ~ports ~rates:[ 4; 1 ] in
  let from_ = 5 and until = 5 + (2 * ports) in
  let plan = Fault_plan.make [ Fabric_down { fabric = 0; from_; until } ] in
  let config =
    { Resilient.default_config with Resilient.primary = Resilient.Rho }
  in
  let r = Resilient.run ~config ~net ~plan inst in
  let audit = r.Resilient.audit in
  let audit_ok =
    match Audit.check ~fabrics:(Net.k net) ~plan audit with
    | Ok () -> true
    | Error _ -> false
  in
  let outage_clean = ref true and served = ref false in
  for s = from_ to min (until - 1) (Audit.num_slots audit - 1) do
    let { Audit.transfers; _ } = Audit.slot audit s in
    List.iter
      (fun { Simulator.fabric; _ } ->
        if fabric = 0 then outage_clean := false else served := true)
      transfers
  done;
  let completed = Array.for_all (fun c -> c >= 0) r.Resilient.completion in
  let fr =
    { f_window = (from_, until);
      f_twct = r.Resilient.twct;
      f_slots = r.Resilient.slots;
      f_replans = r.Resilient.replans;
      f_completed = completed;
      f_audit_ok = audit_ok;
      f_outage_clean = !outage_clean;
      f_served_during_outage = !served;
    }
  in
  if not completed then failwith "E21 fault leg: run did not complete";
  if not audit_ok then
    failwith
      (Printf.sprintf "E21 fault leg: audit rejected the log: %s"
         (match Audit.check ~fabrics:(Net.k net) ~plan audit with
         | Error e -> e
         | Ok () -> "?"));
  if not !outage_clean then
    failwith "E21 fault leg: a transfer rode the downed fabric";
  if not !served then
    failwith "E21 fault leg: no service on the survivor during the outage";
  if fr.f_replans < 2 then
    failwith "E21 fault leg: outage boundaries did not trigger re-planning";
  fr

let run ?(jobs = 1) (cfg : Config.t) =
  Obs.Span.with_ "exp.hetero" @@ fun () ->
  let inst = instance cfg in
  let legs =
    List.map (fun (label, rates) -> run_leg ~jobs ~label ~rates inst) sweep
  in
  { legs; fault = run_fault inst }

let render_leg leg =
  Report.table
    ~title:
      (Printf.sprintf "E21 %s (rates [%s]) — ranked vs sum w(r+ceil(rho/S)) \
                       = %.2f"
         leg.l_label
         (String.concat ";" (List.map string_of_int leg.l_rates))
         leg.l_bound)
    ~header:[ "rank"; "algo"; "TWCT"; "ratio"; "slots"; "seconds" ]
    (List.mapi
       (fun i row ->
         [ string_of_int (i + 1);
           row.algo;
           Report.f2 row.twct;
           (if Float.is_nan row.ratio then "-" else Report.f4 row.ratio);
           string_of_int row.slots;
           Printf.sprintf "%.3f" row.seconds;
         ])
       leg.l_rows)

let render t =
  String.concat "\n" (List.map render_leg t.legs)
  ^ Printf.sprintf
      "\nfault leg (k=2 rates [4;1], fabric 0 down on [%d, %d)): TWCT \
       %.2f, %d slots, %d replans, completed=%b audit=%b outage-clean=%b \
       survivor-served=%b\n"
      (fst t.fault.f_window) (snd t.fault.f_window) t.fault.f_twct
      t.fault.f_slots t.fault.f_replans t.fault.f_completed t.fault.f_audit_ok
      t.fault.f_outage_clean t.fault.f_served_during_outage

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"experiment\":\"E21\",\"legs\":[";
  List.iteri
    (fun i leg ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"label\":\"%s\",\"rates\":[%s],\"bound\":%s,\"rows\":["
           (json_escape leg.l_label)
           (String.concat "," (List.map string_of_int leg.l_rates))
           (json_float leg.l_bound));
      List.iteri
        (fun j row ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"rank\":%d,\"algo\":\"%s\",\"twct\":%s,\"ratio\":%s,\"slots\":%d}"
               (j + 1) (json_escape row.algo) (json_float row.twct)
               (json_float row.ratio) row.slots))
        leg.l_rows;
      Buffer.add_string b "]}")
    t.legs;
  Buffer.add_string b
    (Printf.sprintf
       "],\"fault\":{\"window\":[%d,%d],\"twct\":%s,\"slots\":%d,\"replans\":%d,\"completed\":%b,\"audit_ok\":%b,\"outage_clean\":%b,\"served_during_outage\":%b}}\n"
       (fst t.fault.f_window) (snd t.fault.f_window)
       (json_float t.fault.f_twct) t.fault.f_slots t.fault.f_replans
       t.fault.f_completed t.fault.f_audit_ok t.fault.f_outage_clean
       t.fault.f_served_during_outage);
  Buffer.contents b
