open Workload
open Core

type row = {
  base : float;
  intervals : int;
  iterations : int;
  refactors : int;
  solve_seconds : float;
  lower_bound : float;
  twct : float;
}

let default_bases = [ 1.2; 1.5; 2.0; 3.0; 4.0 ]

let workload (cfg : Config.t) =
  let inst = Instance.filter_m0 (Harness.base_instance cfg) (List.nth cfg.Config.filters 0) in
  let n = Instance.num_coflows inst in
  let st = Random.State.make [| cfg.Config.seed; 0x96D |] in
  Instance.with_weights inst (Weights.random_permutation st n)

let run ?(jobs = 1) ?(bases = default_bases) cfg =
  let inst = workload cfg in
  (* Each base is an independent cold solve: no warm-start chaining across
     bases, so the rows are a pure function of (instance, base) and the
     sweep parallelizes with identical output at any job count. *)
  Engine.run_many ~jobs
  @@ List.map
       (fun base () ->
         let lp, solve_seconds =
           Obs.Span.timed "lp_grid.solve" (fun () ->
               Lp_relax.solve_interval_base ~base inst)
         in
         let intervals =
           (* distinct grid levels actually used by the solution encoding *)
           List.fold_left (fun acc (_, l, _) -> max acc l) 0 lp.Lp_relax.values
         in
         let order = Ordering.by_lp lp in
         let sched = Scheduler.run ~case:Scheduler.Group_backfill inst order in
         { base;
           intervals;
           iterations = lp.Lp_relax.iterations;
           refactors = lp.Lp_relax.refactors;
           solve_seconds;
           lower_bound = lp.Lp_relax.lower_bound;
           twct = sched.Scheduler.twct;
         })
       bases

let render ?jobs ?bases cfg =
  let rows = run ?jobs ?bases cfg in
  Report.table
    ~title:
      "LP-grid ablation: tighter interval grids vs the paper's powers of \
       two (base 2); ordering fed into grouping+backfilling"
    ~header:
      [ "grid base"; "intervals used"; "simplex pivots"; "refactors";
        "solve (s)"; "LP lower bound"; "TWCT (case d)";
      ]
    (List.map
       (fun r ->
         [ Report.f2 r.base;
           string_of_int r.intervals;
           string_of_int r.iterations;
           string_of_int r.refactors;
           Report.f2 r.solve_seconds;
           Report.f2 r.lower_bound;
           Report.f2 r.twct;
         ])
       rows)
