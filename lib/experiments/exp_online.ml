open Workload
open Core

type row = { algo : string; twct : float; twft : float; makespan : int }

let run ?(jobs = 1) (cfg : Config.t) =
  let st = Random.State.make [| cfg.Config.seed; 0x0A1 |] in
  let inst =
    Fb_like.generate_with_arrivals ~mean_gap:cfg.Config.release_mean_gap
      ~ports:cfg.Config.ports
      ~coflows:(cfg.Config.coflows / 2)
      st
  in
  let inst = Instance.filter_m0 inst (List.nth cfg.Config.filters 0 / 2) in
  let n = Instance.num_coflows inst in
  let wst = Random.State.make [| cfg.Config.seed; 0x0A2 |] in
  let inst = Instance.with_weights inst (Weights.random_permutation wst n) in
  let weights = Instance.weights inst in
  let releases = Instance.releases inst in
  let row name (r : Scheduler.result) =
    { algo = name;
      twct = r.Scheduler.twct;
      twft =
        Metrics.total_weighted_flow ~weights ~releases r.Scheduler.completion;
      makespan = r.Scheduler.slots;
    }
  in
  let lp = Lp_relax.solve_interval inst in
  (* after the (shared) LP solve every row is an independent simulation;
     fan them out over the engine's domains *)
  let runs =
    [ (fun () ->
        row "offline Algorithm 2 (H_LP, grouped)"
          (Scheduler.run ~case:Scheduler.Group inst (Ordering.by_lp lp)));
      (fun () ->
        row "offline H_LP + grouping + backfilling"
          (Scheduler.run ~case:Scheduler.Group_backfill inst
             (Ordering.by_lp lp)));
      (fun () ->
        row "offline H_pd (primal-dual) + group + bf"
          (Scheduler.run ~case:Scheduler.Group_backfill inst
             (Primal_dual.order inst)));
    ]
    @ List.map
        (fun rule () -> row (Online.rule_name rule) (Online.run rule inst))
        Online.all_rules
    @ List.map
        (fun rule () ->
          row (Decentralized.rule_name rule) (Decentralized.run rule inst))
        Decentralized.all_rules
  in
  (Engine.run_many ~jobs runs, lp.Lp_relax.lower_bound)

let render ?jobs cfg =
  let rows, bound = run ?jobs cfg in
  Report.table
    ~title:
      (Printf.sprintf
         "Online vs offline under geometric arrivals (LP lower bound on \
          TWCT: %.0f)"
         bound)
    ~header:[ "algorithm"; "TWCT"; "weighted flow time"; "makespan" ]
    (List.map
       (fun r ->
         [ r.algo; Report.f2 r.twct; Report.f2 r.twft;
           string_of_int r.makespan;
         ])
       rows)
