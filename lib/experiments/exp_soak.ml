type row = {
  label : string;
  config : Service.Soak.config;
  report : Service.Soak.report;
}

(* The service runs at its own scale (8 ports, the Soak default): the live
   set is bounded by admission, so unlike the batch experiments the
   interesting axis is stream length and burstiness, not instance width. *)
let regimes cfg =
  let coflows = 10 * cfg.Config.coflows in
  let seed = cfg.Config.seed in
  let base = Service.Soak.default_config in
  [ ( "poisson steady",
      { base with
        Service.Soak.process = Service.Arrivals.Poisson { mean_gap = 48.0 };
        coflows;
        seed;
        plan_seed = seed + 1;
      } );
    ( "mmpp bursty",
      { base with
        Service.Soak.process =
          Service.Arrivals.Mmpp
            { mean_gaps = [| 96.0; 12.0 |]; mean_dwell = 24 };
        coflows;
        seed = seed + 2;
        plan_seed = seed + 3;
      } );
    ( "poisson overload",
      { base with
        Service.Soak.process = Service.Arrivals.Poisson { mean_gap = 8.0 };
        coflows;
        seed = seed + 4;
        plan_seed = seed + 5;
        (* overload sheds most arrivals; waits of the admitted stay low
           but are not the design point, so no SLO gate here *)
        wait_p99_slo = None;
      } );
  ]

let run ?telemetry cfg =
  List.map
    (fun (label, config) ->
      let report =
        match telemetry with
        | None -> Service.Soak.run ~verify_replay:true config
        | Some base ->
          let slug =
            String.map (fun c -> if c = ' ' then '-' else c) label
          in
          let t =
            Service.Telemetry.create
              ~config:
                { Service.Telemetry.default_config with
                  Service.Telemetry.path = Some (base ^ "-" ^ slug)
                }
              ()
          in
          let report =
            Service.Soak.run ~verify_replay:true
              ~observer:(Service.Telemetry.observer t) config
          in
          Service.Telemetry.finish t;
          report
      in
      { label; config; report })
    (regimes cfg)

let all_pass rows =
  List.for_all (fun r -> Service.Soak.failed r.report = []) rows

let render ?telemetry cfg =
  let rows = run ?telemetry cfg in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "E17. Service soak: streaming arrivals, admission, degradation, audit\n";
  Buffer.add_string b
    "   (faults at intensity 1.0; every run replayed and re-certified)\n\n";
  Buffer.add_string b
    "   regime            arrivals admit%  slots   epochs degr  p50/p99 \
     wait  gates\n";
  List.iter
    (fun { label; report; _ } ->
      let s = report.Service.Soak.stats in
      let failed = Service.Soak.failed report in
      let gates =
        if failed = [] then "PASS"
        else
          String.concat ","
            (List.map (fun g -> g.Service.Soak.gate ^ "!") failed)
      in
      Buffer.add_string b
        (Printf.sprintf
           "   %-17s %8d %5.1f%% %7d %7d %5d %6d/%-7d  %s\n" label
           s.Service.Epoch_loop.arrived
           (100.0
           *. float_of_int s.Service.Epoch_loop.admitted
           /. float_of_int (max 1 s.Service.Epoch_loop.arrived))
           s.Service.Epoch_loop.slots s.Service.Epoch_loop.epochs
           s.Service.Epoch_loop.degradations s.Service.Epoch_loop.wait_p50
           s.Service.Epoch_loop.wait_p99 gates))
    rows;
  Buffer.add_string b
    (Printf.sprintf "\n   all gates: %s\n"
       (if all_pass rows then "PASS" else "FAIL"));
  Buffer.contents b
