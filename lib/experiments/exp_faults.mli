(** E16 — fault-injection study (the robustness analogue of Fig. 2).

    Sweeps seeded random fault plans of increasing intensity over one
    instance and compares the three orderings ([H_A], [H_rho], [H_LP]) when
    each is run through the degradation-aware loop of {!Core.Resilient};
    every run's audit log is re-certified with {!Faults.Audit.check}.  A
    second table reports the [H_LP] chain diagnostics (slots per tier,
    re-planning rounds, LP failures), and a third demonstrates the
    H_LP -> H_rho -> H_A fallback under injected solver outages and a
    zero-second solver deadline.

    The sweep uses a pivot budget rather than a wall-clock deadline, so
    every run is a deterministic function of the configuration seed. *)

type entry = {
  primary : Core.Resilient.tier;
  result : Core.Resilient.result;
  audit_ok : bool;
}

type row = {
  intensity : float;
  plan : Faults.Fault_plan.t;
  entries : entry list;  (** one per ordering: [Arrival; Rho; Lp] *)
}

val run : ?intensities:float list -> Config.t -> row list
(** Default intensities [0; 0.5; 1; 2]; intensity [0] is the fault-free
    baseline the "vs 0" columns normalise against. *)

type demo = {
  label : string;
  demo_plan : Faults.Fault_plan.t;
  demo_result : Core.Resilient.result;
  demo_audit_ok : bool;
}

val chain_demo : Config.t -> demo list

val render : ?intensities:float list -> Config.t -> string
