open Workload
open Core

type weighting = Equal | Random

let weighting_name = function Equal -> "equal" | Random -> "random"

type entry = {
  order_name : string;
  case : Scheduler.case;
  result : Scheduler.result;
}

type block = {
  filter : int;
  weighting : weighting;
  instance : Instance.t;
  lp : Lp_relax.result;
  entries : entry list;
}

let order_names = [ "HA"; "Hrho"; "HLP" ]

let base_instance (cfg : Config.t) =
  let st = Random.State.make [| cfg.Config.seed |] in
  Fb_like.generate ~ports:cfg.Config.ports ~coflows:cfg.Config.coflows st

let block ?warm_start cfg ~filter ~weighting =
  Obs.Span.with_ "harness.block" @@ fun () ->
  let inst = Instance.filter_m0 (base_instance cfg) filter in
  let n = Instance.num_coflows inst in
  if n = 0 then
    invalid_arg
      (Printf.sprintf "Harness.block: filter M0>=%d removed every coflow"
         filter);
  let inst =
    match weighting with
    | Equal -> Instance.with_weights inst (Weights.equal n)
    | Random ->
      (* weight seed depends on the filter so blocks are independent yet
         reproducible *)
      let st = Random.State.make [| cfg.Config.seed; filter; 0xBEEF |] in
      Instance.with_weights inst (Weights.random_permutation st n)
  in
  let lp =
    Obs.Span.with_ "harness.lp_solve" (fun () ->
        Lp_relax.solve_interval ?warm_start inst)
  in
  let orders =
    [ ("HA", Ordering.arrival inst);
      ("Hrho", Ordering.by_load_over_weight inst);
      ("HLP", Ordering.by_lp lp);
    ]
  in
  let entries =
    Obs.Span.with_ "harness.schedule" (fun () ->
        List.concat_map
          (fun (order_name, order) ->
            List.map
              (fun case ->
                { order_name; case; result = Scheduler.run ~case inst order })
              Scheduler.all_cases)
          orders)
  in
  { filter; weighting; instance = inst; lp; entries }

(* The two weightings of a filter share the instance (and thus the
   constraint rows); only the objective differs, so the equal-weight optimum
   is a natural warm start for the random-weight solve.  One job per filter:
   the equal->random warm chaining stays inside a job, and different filters
   are fully independent, so the block list is identical at any job count. *)
let all_blocks ?(jobs = 1) cfg =
  Engine.run_many ~jobs
    (List.map
       (fun filter () ->
         let equal = block cfg ~filter ~weighting:Equal in
         let random =
           block ?warm_start:equal.lp.Lp_relax.warm cfg ~filter
             ~weighting:Random
         in
         [ equal; random ])
       cfg.Config.filters)
  |> List.concat

let find b ~order case =
  match
    List.find_opt
      (fun e -> e.order_name = order && e.case = case)
      b.entries
  with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf
         "Harness.find: no entry for order %S, case (%s) in block (filter \
          M0>=%d, %s weights)"
         order (Scheduler.case_name case) b.filter
         (weighting_name b.weighting))

let twct b ~order case = (find b ~order case).result.Scheduler.twct

let normalized b entry =
  let base = twct b ~order:"HLP" Scheduler.Group_backfill in
  entry.result.Scheduler.twct /. base

let lp_ratio b ~order case =
  let bound = b.lp.Lp_relax.lower_bound in
  if bound <= 0.0 then infinity else twct b ~order case /. bound

(* The LP-free ordering-based contenders of the algorithm arena (E19),
   all under the greedy backfilled list schedule so decision-time gauges
   compare like with like.  SG and Chen carry proven (resp. claimed)
   approximation factors; the rest are heuristics. *)
let lp_free_arena inst =
  [ ("SG", Some (Shafiee.guarantee_for inst), Shafiee.policy inst);
    ("Chen", Some (Chen.guarantee_for inst), Chen.policy inst);
    ("H_pd", None, Baselines.greedy_policy (Primal_dual.order inst));
    ("H_rho", None, Baselines.greedy_policy (Ordering.by_load_over_weight inst));
    ("H_size", None, Baselines.greedy_policy (Ordering.by_total_size inst));
    ("H_A", None, Baselines.greedy_policy (Ordering.arrival inst));
  ]
