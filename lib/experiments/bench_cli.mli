(** Argv parsing for [bench/main.exe], split out of the executable so the
    corner cases are unit-testable (the [--profile --json out.json] class
    of bug: an optional PATH must never consume a following flag or mode
    name).

    Grammar:
    {v
    main.exe [MODE ...] [--scale S] [--jobs N] [--json PATH]
             [--profile [PATH]] [--trace [PATH]]
    main.exe obs-diff OLD NEW [--threshold PCT] [--time-threshold PCT]
             [--json PATH]
    v} *)

type diff_opts = {
  old_path : string;
  new_path : string;
  threshold : float;  (** percent, default 10 *)
  time_threshold : float option;
      (** absent: wall-time metrics are informational *)
  diff_json : string option;
      (** also write the machine-readable verdict (per-metric deltas plus
          pass/fail, {!Obs.Profile_diff.to_json}) to this path *)
}

type t = {
  scale : Config.scale;
  jobs : int;
      (** domains for the experiment runs (default 1); results are
          identical at any value *)
  json : string option;
  profile : string option;  (** [Some "PROFILE.json"] when PATH omitted *)
  trace : string option;  (** [Some "TRACE.json"] when PATH omitted *)
  diff : diff_opts option;  (** the [obs-diff] subcommand *)
  modes : string list;  (** in argv order *)
}

val usage : string
(** The grammar above, rendered for stderr: printed alongside any parse
    error so CLI misuse never fails silently. *)

val default_profile_path : string

val default_trace_path : string

val parse : is_mode:(string -> bool) -> string list -> (t, string) result
(** [parse ~is_mode args] over [argv] minus the program name.  [is_mode]
    decides which bare words are modes — also used to keep [--profile] /
    [--trace] from consuming a mode name as their PATH.  Unknown flags and
    modes are errors. *)
