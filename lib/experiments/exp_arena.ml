open Workload
open Core

(* E19: the algorithm arena.  See the interface for the layout; the code
   below is in three parts — contender construction (a policy plus its
   labels), the leg runner (race, rank, stats, gauges), and the ratio
   assertions that make the arena a regression tripwire rather than a
   table generator. *)

type row = {
  algo : string;
  fallback : string option;
  guarantee : float option;
  twct : float;
  ratio : float;
  slots : int;
  mean_c : float;
  p95_c : int;
  decisions : int;
  decision_us : float;
  seconds : float;
}

type leg = {
  l_label : string;
  l_ports : int;
  l_coflows : int;
  l_bound_name : string;
  l_bound : float;
  l_rows : row list;
}

type t = { small : leg; scale : leg }

type contender = {
  c_name : string;
  c_fallback : string option;
  c_guarantee : float option;
  c_policy : Policy.t;
}

(* Wrap a policy so every stepper invocation (slot-by-slot or batched) is
   counted, without disturbing which loop the engine picks: the batched
   decision stays present iff the wrapped policy offered one. *)
let counted (p : Policy.t) =
  let count = ref 0 in
  let policy =
    Policy.make ~describe:(Policy.describe p) (fun sim ->
        let s = p.Policy.prepare sim in
        { s with
          Policy.next_slot =
            (fun sim ->
              incr count;
              s.Policy.next_slot sim);
          next_batch =
            Option.map
              (fun f sim ~max_n ->
                incr count;
                f sim ~max_n)
              s.Policy.next_batch;
        })
  in
  (policy, count)

let lp_free_contenders inst =
  List.map
    (fun (c_name, c_guarantee, c_policy) ->
      { c_name; c_fallback = None; c_guarantee; c_policy })
    (Harness.lp_free_arena inst)

(* The paper's full H_LP stack (LP order + deterministic grouping +
   backfilling), affordable on the small leg only. *)
let hlp_grouped_contender inst =
  let lp = Lp_relax.solve_interval inst in
  let order = Ordering.by_lp lp in
  let with_releases =
    Array.exists (fun r -> r > 0) (Instance.releases inst)
  in
  { c_name = "H_LP (d)";
    c_fallback = None;
    c_guarantee = Some (Verify.deterministic_ratio_limit ~with_releases);
    c_policy =
      Scheduler.as_policy ~backfill:true ~describe:"HLP (d)"
        (Grouping.deterministic inst order);
  }

(* The budgeted H_LP of the scale leg: same pivot budget and degradation
   as E18, but the fallback is baked into the label and the [fallback]
   field — the ranked table can never attribute H_rho numbers to H_LP. *)
let hlp_budgeted_contender ~lp_budget inst =
  match Lp_relax.solve_interval ~max_iterations:lp_budget inst with
  | lp ->
    { c_name = "H_LP";
      c_fallback = None;
      c_guarantee = None;
      c_policy = Baselines.greedy_policy (Ordering.by_lp lp);
    }
  | exception Failure _ ->
    { c_name = "H_LP(fallback:H_rho)";
      c_fallback = Some "H_rho";
      c_guarantee = None;
      c_policy = Baselines.greedy_policy (Ordering.by_load_over_weight inst);
    }

let slot_adaptive_contenders inst =
  let n = Instance.num_coflows inst in
  [ { c_name = "SEBF+MADD";
      c_fallback = None;
      c_guarantee = None;
      c_policy = Baselines.sebf_madd_policy ~coflows:n;
    };
    { c_name = "MaxWeight";
      c_fallback = None;
      c_guarantee = None;
      c_policy = Baselines.max_weight_policy ~weights:(Instance.weights inst);
    };
    { c_name = "RR";
      c_fallback = None;
      c_guarantee = None;
      c_policy = Baselines.round_robin_policy n;
    };
  ]

(* The small-leg instance: LP-EXP-sized fb-like flows (as E4) but with
   geometric arrivals, so the release-aware branch of the SG/Chen rule
   and the factor-5/4.36 guarantees are actually exercised. *)
let small_instance ?filter (cfg : Config.t) ~ports ~coflows =
  let st = Random.State.make [| cfg.Config.seed; 0xA8E4A |] in
  let params =
    { Fb_like.ports; coflows; short_max = 2; long_mean = 3; long_cap = 8 }
  in
  let mean_gap = max 1 (cfg.Config.release_mean_gap / 10) in
  let inst = Fb_like.generate_with_arrivals ~params ~mean_gap ~ports ~coflows st in
  let wst = Random.State.make [| cfg.Config.seed; 0xA8E4A; 1 |] in
  let inst =
    Instance.with_weights inst (Weights.random_permutation wst coflows)
  in
  match filter with None -> inst | Some f -> Instance.filter_m0 inst f

(* [sum_k w_k (r_k + rho (D_k))]: every coflow needs [rho] slots alone on
   its bottleneck port after release, so this is a certified lower bound
   at any scale — the only one available where the LPs cannot run. *)
let isolation_bound inst =
  Array.fold_left
    (fun acc c ->
      acc
      +. (c.Instance.weight
         *. float_of_int (c.Instance.release + Matrix.Mat.load c.Instance.demand)))
    0.0 (Instance.coflows inst)

let gauge_slug name =
  let b = Buffer.create (String.length name) in
  let last_us = ref true in
  String.iter
    (fun ch ->
      let ch = Char.lowercase_ascii ch in
      if (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') then begin
        Buffer.add_char b ch;
        last_us := false
      end
      else if not !last_us then begin
        Buffer.add_char b '_';
        last_us := true
      end)
    name;
  let s = Buffer.contents b in
  if s <> "" && s.[String.length s - 1] = '_' then
    String.sub s 0 (String.length s - 1)
  else s

let run_leg ~jobs ~label ~gauge_prefix ~bound_name ~bound inst contenders =
  let results =
    Engine.run_many ~jobs
      (List.map
         (fun c () ->
           let policy, count = counted c.c_policy in
           let r = Engine.run inst policy in
           (c, r, !count))
         contenders)
  in
  let rows =
    List.map
      (fun (c, r, decisions) ->
        let what = Printf.sprintf "%s on %s" c.c_name label in
        let mean_c = Metrics.mean ~what r.Engine.completion in
        let p95_c = Metrics.percentile ~what 0.95 r.Engine.completion in
        let slots = Metrics.max_completion ~what r.Engine.completion in
        let decision_us =
          if decisions > 0 then r.Engine.seconds /. float_of_int decisions *. 1e6
          else 0.0
        in
        { algo = c.c_name;
          fallback = c.c_fallback;
          guarantee = c.c_guarantee;
          twct = r.Engine.twct;
          ratio = (if bound > 0.0 then r.Engine.twct /. bound else Float.nan);
          slots;
          mean_c;
          p95_c;
          decisions;
          decision_us;
          seconds = r.Engine.seconds;
        })
      results
  in
  let rows =
    List.sort
      (fun a b ->
        match compare a.twct b.twct with 0 -> compare a.algo b.algo | c -> c)
      rows
  in
  List.iter
    (fun row ->
      Obs.Counter.Gauge.set
        (Obs.Counter.Gauge.make
           (Printf.sprintf "arena.%s.%s.decision_us" gauge_prefix
              (gauge_slug row.algo)))
        row.decision_us)
    rows;
  { l_label = label;
    l_ports = Instance.ports inst;
    l_coflows = Instance.num_coflows inst;
    l_bound_name = bound_name;
    l_bound = bound;
    l_rows = rows;
  }

(* Every row must dominate the leg's lower bound; every guaranteed row
   must stay within its factor of [target] (the leg's reference for OPT:
   the LP-EXP bound on the small leg, the best measured TWCT — itself an
   upper bound on OPT — on the scale leg). *)
let assert_ratios ~target_name ~target leg =
  List.iter
    (fun row ->
      if leg.l_bound > 0.0 && row.twct +. 1e-6 < leg.l_bound then
        failwith
          (Printf.sprintf
             "E19 %s: %s TWCT %.2f beats the %s lower bound %.2f — bound or \
              scheduler is wrong"
             leg.l_label row.algo row.twct leg.l_bound_name leg.l_bound);
      match row.guarantee with
      | Some g when target > 0.0 ->
        if row.twct > (g *. target) +. 1e-6 then
          failwith
            (Printf.sprintf
               "E19 %s: %s ratio %.3f vs %s exceeds its approximation factor \
                %.2f"
               leg.l_label row.algo (row.twct /. target) target_name g)
      | _ -> ())
    leg.l_rows

let best_twct leg =
  List.fold_left (fun acc r -> Float.min acc r.twct) Float.infinity leg.l_rows

let run ?(jobs = 1) ?filter ?small ?scale ?(scale_lp_budget = 2_000)
    (cfg : Config.t) =
  Obs.Span.with_ "exp.arena" @@ fun () ->
  let sp, sc =
    match small with
    | Some pc -> pc
    | None -> (cfg.Config.lpexp_ports, cfg.Config.lpexp_coflows)
  in
  let small_inst = small_instance ?filter cfg ~ports:sp ~coflows:sc in
  let small_contenders =
    lp_free_contenders small_inst
    @ (if Instance.num_coflows small_inst > 0 then
         [ hlp_grouped_contender small_inst ]
       else [])
    @ slot_adaptive_contenders small_inst
  in
  let lpexp = Lp_relax.solve_time_indexed ~max_vars:400_000 small_inst in
  let small_leg =
    run_leg ~jobs
      ~label:
        (Printf.sprintf "E19 small leg (%d ports, %d coflows%s)"
           (Instance.ports small_inst)
           (Instance.num_coflows small_inst)
           (match filter with
           | None -> ""
           | Some f -> Printf.sprintf ", filter M0>=%d" f))
      ~gauge_prefix:"small" ~bound_name:"LP-EXP"
      ~bound:lpexp.Lp_relax.lower_bound small_inst small_contenders
  in
  assert_ratios ~target_name:"LP-EXP" ~target:small_leg.l_bound small_leg;
  let zp, zc =
    match scale with
    | Some pc -> pc
    | None -> (Exp_scale.ports, Exp_scale.coflows)
  in
  let scale_inst = Exp_scale.instance ~ports:zp cfg ~coflows:zc in
  let scale_contenders =
    lp_free_contenders scale_inst
    @ [ hlp_budgeted_contender ~lp_budget:scale_lp_budget scale_inst ]
  in
  let scale_leg =
    run_leg ~jobs
      ~label:(Printf.sprintf "E19 scale leg (%d ports, %d coflows)" zp zc)
      ~gauge_prefix:"scale" ~bound_name:"sum w(r+rho)"
      ~bound:(isolation_bound scale_inst)
      scale_inst scale_contenders
  in
  assert_ratios ~target_name:"best TWCT" ~target:(best_twct scale_leg)
    scale_leg;
  { small = small_leg; scale = scale_leg }

let fmt_guarantee = function None -> "-" | Some g -> Printf.sprintf "%.2f" g

let fmt_ratio r = if Float.is_nan r then "-" else Report.f4 r

let render_leg leg =
  Report.table
    ~title:
      (Printf.sprintf "%s — ranked vs %s = %.2f" leg.l_label leg.l_bound_name
         leg.l_bound)
    ~header:
      [ "rank";
        "algo";
        "guar";
        "TWCT";
        "ratio";
        "slots";
        "mean C";
        "p95 C";
        "decisions";
        "us/dec";
        "seconds";
      ]
    (List.mapi
       (fun i row ->
         [ string_of_int (i + 1);
           row.algo;
           fmt_guarantee row.guarantee;
           Report.f2 row.twct;
           fmt_ratio row.ratio;
           string_of_int row.slots;
           Report.f2 row.mean_c;
           string_of_int row.p95_c;
           string_of_int row.decisions;
           Printf.sprintf "%.1f" row.decision_us;
           Printf.sprintf "%.3f" row.seconds;
         ])
       leg.l_rows)

let render t =
  render_leg t.small ^ "\n" ^ render_leg t.scale
  ^ "note: ratios compare against each leg's lower bound (LP-EXP small, \
     isolation bound at scale); guaranteed entries are asserted within \
     their factors at run time.\n"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let json_leg b leg =
  Buffer.add_string b
    (Printf.sprintf
       "{\"label\":\"%s\",\"ports\":%d,\"coflows\":%d,\"bound\":{\"name\":\"%s\",\"value\":%s},\"rows\":["
       (json_escape leg.l_label) leg.l_ports leg.l_coflows
       (json_escape leg.l_bound_name)
       (json_float leg.l_bound));
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"rank\":%d,\"algo\":\"%s\",\"fallback\":%s,\"guarantee\":%s,\"twct\":%s,\"ratio\":%s,\"slots\":%d,\"mean_completion\":%s,\"p95_completion\":%d,\"decisions\":%d,\"decision_us\":%s,\"seconds\":%s}"
           (i + 1) (json_escape row.algo)
           (match row.fallback with
           | None -> "null"
           | Some f -> Printf.sprintf "\"%s\"" (json_escape f))
           (match row.guarantee with
           | None -> "null"
           | Some g -> json_float g)
           (json_float row.twct) (json_float row.ratio) row.slots
           (json_float row.mean_c) row.p95_c row.decisions
           (json_float row.decision_us)
           (json_float row.seconds)))
    leg.l_rows;
  Buffer.add_string b "]}"

let json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"experiment\":\"E19\",\"legs\":[";
  json_leg b t.small;
  Buffer.add_char b ',';
  json_leg b t.scale;
  Buffer.add_string b "]}\n";
  Buffer.contents b
