(** Shared computation behind Table 1 and Figures 2a/2b: for each
    (M0-filter, weighting) block, run all 12 algorithms — {H_A, H_rho, H_LP}
    x {(a), (b), (c), (d)} — on the filtered fb-like trace and keep the LP
    relaxation around for lower bounds and audits. *)

type weighting = Equal | Random

val weighting_name : weighting -> string

type entry = {
  order_name : string;  (** "HA" | "Hrho" | "HLP" *)
  case : Core.Scheduler.case;
  result : Core.Scheduler.result;
}

type block = {
  filter : int;
  weighting : weighting;
  instance : Workload.Instance.t;  (** filtered + weighted *)
  lp : Core.Lp_relax.result;
  entries : entry list;  (** all 12 combinations *)
}

val order_names : string list

val base_instance : Config.t -> Workload.Instance.t
(** The unfiltered fb-like trace for this configuration (deterministic in
    the seed). *)

val block :
  ?warm_start:Core.Lp_relax.warm_hints ->
  Config.t ->
  filter:int ->
  weighting:weighting ->
  block
(** [warm_start] seeds the block's LP solve (see
    {!Core.Lp_relax.solve_interval}); {!all_blocks} uses it to chain each
    filter's equal-weight basis into the random-weight solve. *)

val all_blocks : Config.t -> block list
(** Every (filter, weighting) combination of the configuration; this is
    where the six LP solves happen. *)

val find : block -> order:string -> Core.Scheduler.case -> entry
(** @raise Not_found if absent. *)

val twct : block -> order:string -> Core.Scheduler.case -> float

val normalized : block -> entry -> float
(** Entry TWCT divided by the block's (H_LP, case (d)) TWCT — the
    normalization used in the paper's Table 1. *)

val lp_ratio : block -> order:string -> Core.Scheduler.case -> float
(** TWCT over the LP lower bound (an upper bound on the true approximation
    ratio). *)
