(** Shared computation behind Table 1 and Figures 2a/2b: for each
    (M0-filter, weighting) block, run all 12 algorithms — {H_A, H_rho, H_LP}
    x {(a), (b), (c), (d)} — on the filtered fb-like trace and keep the LP
    relaxation around for lower bounds and audits. *)

type weighting = Equal | Random

val weighting_name : weighting -> string

type entry = {
  order_name : string;  (** "HA" | "Hrho" | "HLP" *)
  case : Core.Scheduler.case;
  result : Core.Scheduler.result;
}

type block = {
  filter : int;
  weighting : weighting;
  instance : Workload.Instance.t;  (** filtered + weighted *)
  lp : Core.Lp_relax.result;
  entries : entry list;  (** all 12 combinations *)
}

val order_names : string list

val base_instance : Config.t -> Workload.Instance.t
(** The unfiltered fb-like trace for this configuration (deterministic in
    the seed). *)

val block :
  ?warm_start:Core.Lp_relax.warm_hints ->
  Config.t ->
  filter:int ->
  weighting:weighting ->
  block
(** [warm_start] seeds the block's LP solve (see
    {!Core.Lp_relax.solve_interval}); {!all_blocks} uses it to chain each
    filter's equal-weight basis into the random-weight solve. *)

val all_blocks : ?jobs:int -> Config.t -> block list
(** Every (filter, weighting) combination of the configuration; this is
    where the six LP solves happen.  [jobs] (default 1) distributes the
    filters over that many domains via {!Core.Engine.run_many} — the
    equal-to-random warm-start chaining stays within a filter, so the
    returned blocks are identical at any job count. *)

val find : block -> order:string -> Core.Scheduler.case -> entry
(** @raise Failure naming the missing (order, case) pair and the block's
    (filter, weighting) when absent. *)

val twct : block -> order:string -> Core.Scheduler.case -> float

val normalized : block -> entry -> float
(** Entry TWCT divided by the block's (H_LP, case (d)) TWCT — the
    normalization used in the paper's Table 1. *)

val lp_ratio : block -> order:string -> Core.Scheduler.case -> float
(** TWCT over the LP lower bound (an upper bound on the true approximation
    ratio). *)

val lp_free_arena :
  Workload.Instance.t -> (string * float option * Core.Policy.t) list
(** The LP-free ordering-based contenders of the algorithm arena (E19):
    [(label, proven approximation factor if any, policy)].  All run the
    greedy backfilled list schedule over their respective orders —
    Shafiee–Ghaderi ([SG], factor 5 / 4), Chen ([Chen], claimed
    4.36 / 3.61), the primal-dual order ([H_pd]), and the [H_rho] /
    [H_size] / [H_A] heuristics. *)
