open Service
open Faults

type window = {
  w_from : int;
  w_until : int;
  w_fault : string;
  w_rule : string;
}

(* Epochs are 64 slots; the stream below keeps the live set busy well past
   epoch 50, so every window lands in executed epochs. *)
let windows =
  [ { w_from = 8;
      w_until = 9;
      w_fault = "solver outage (LP tier)";
      w_rule = "degradation";
    };
    { w_from = 20;
      w_until = 20;
      w_fault = "straggler x4 on a live coflow";
      w_rule = "demand_surplus";
    };
    { w_from = 32;
      w_until = 34;
      w_fault = "core degraded to capacity 1";
      w_rule = "fabric_stall";
    };
    { w_from = 46;
      w_until = 47;
      w_fault = "solver outage (full stack)";
      w_rule = "degradation";
    };
  ]

let epoch_len = 64

let script ~epoch ~coflows =
  ignore coflows;
  if epoch >= 8 && epoch <= 9 then
    Fault_plan.make [ Fault_plan.Solver_outage { from_ = 0; until = 1; full = false } ]
  else if epoch = 20 then
    Fault_plan.make [ Fault_plan.Straggler { coflow = 0; at = 0; factor = 4 } ]
  else if epoch >= 32 && epoch <= 34 then
    Fault_plan.make
      [ Fault_plan.Core_degraded { from_ = 0; until = epoch_len; capacity = 1 } ]
  else if epoch >= 46 && epoch <= 47 then
    Fault_plan.make [ Fault_plan.Solver_outage { from_ = 0; until = 1; full = true } ]
  else Fault_plan.empty

(* The stream is pinned, not Config-scaled: the windows sit at fixed
   epochs, so the load surrounding them is part of the experiment. *)
let soak_cfg ~fault =
  { Soak.default_config with
    Soak.process = Arrivals.Poisson { mean_gap = 10.0 };
    coflows = 500;
    seed = 7;
    plan_seed = 0;
    loop =
      { Epoch_loop.default_config with
        Epoch_loop.epoch_length = epoch_len;
        lp_deadline = None;
        (* the control leg must stay alert-free: no SLO-pressure
           degradation, no deadline rejections *)
        degrade_live_above = 128;
        admission =
          { Admission.default_config with
            Admission.max_live = 96;
            deadline_factor = 0.0;
          };
        fault_intensity = 0.0;
        fault_script = (if fault then Some script else None);
      };
    wait_p99_slo = None;
  }

let telem_config path =
  { Telemetry.default_config with Telemetry.path; wait_budget = 2048 }

type outcome = {
  window : window;
  alert_epoch : int option;
  latency : int option;
  ok : bool;
}

type result = {
  outcomes : outcome list;
  fault_transitions : int;
  control_transitions : int;
  control_watchdog : int;
  fault_fp_match : bool;
  control_fp_match : bool;
  fault_stats : Epoch_loop.stats;
  control_stats : Epoch_loop.stats;
}

let observed_leg ~fault ~path =
  let t = Telemetry.create ~config:(telem_config path) () in
  let report = Soak.run ~observer:(Telemetry.observer t) (soak_cfg ~fault) in
  Telemetry.finish t;
  (t, report.Soak.stats)

let bare_leg ~fault = (Soak.run (soak_cfg ~fault)).Soak.stats

let match_window transitions w =
  List.find_opt
    (fun (tr : Slo.transition) ->
      String.equal tr.Slo.t_rule w.w_rule
      && tr.Slo.t_to = Slo.Firing
      && tr.Slo.t_epoch >= w.w_from
      && tr.Slo.t_epoch <= w.w_until + 2)
    transitions

let run ?telemetry (_ : Config.t) =
  let fault_path = Option.map (fun b -> b ^ "-fault") telemetry in
  let control_path = Option.map (fun b -> b ^ "-control") telemetry in
  let t_fault, fault_stats = observed_leg ~fault:true ~path:fault_path in
  let fault_bare = bare_leg ~fault:true in
  let t_ctl, control_stats = observed_leg ~fault:false ~path:control_path in
  let control_bare = bare_leg ~fault:false in
  let transitions = Slo.transitions (Telemetry.slo t_fault) in
  let outcomes =
    List.map
      (fun w ->
        match match_window transitions w with
        | None -> { window = w; alert_epoch = None; latency = None; ok = false }
        | Some tr ->
          let lat = tr.Slo.t_epoch - w.w_from in
          { window = w;
            alert_epoch = Some tr.Slo.t_epoch;
            latency = Some lat;
            ok = lat <= 2;
          })
      windows
  in
  { outcomes;
    fault_transitions = List.length transitions;
    control_transitions =
      List.length (Slo.transitions (Telemetry.slo t_ctl));
    control_watchdog = List.length (Watchdog.alerts (Telemetry.watchdog t_ctl));
    fault_fp_match =
      String.equal fault_stats.Epoch_loop.fingerprint
        fault_bare.Epoch_loop.fingerprint;
    control_fp_match =
      String.equal control_stats.Epoch_loop.fingerprint
        control_bare.Epoch_loop.fingerprint;
    fault_stats;
    control_stats;
  }

let all_pass r =
  List.for_all (fun o -> o.ok) r.outcomes
  && r.control_transitions = 0 && r.control_watchdog = 0 && r.fault_fp_match
  && r.control_fp_match

let render r =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "E20. Live telemetry: injected fault windows vs raised alerts\n";
  Buffer.add_string b
    "   (same seeded stream, four legs: faults/control x observed/bare)\n\n";
  Buffer.add_string b
    "   window   fault                          expected rule   alert  \
     latency  ok\n";
  List.iter
    (fun o ->
      Buffer.add_string b
        (Printf.sprintf "   %3d-%-3d  %-30s %-15s %5s  %7s  %s\n" o.window.w_from
           o.window.w_until o.window.w_fault o.window.w_rule
           (match o.alert_epoch with
           | Some e -> string_of_int e
           | None -> "-")
           (match o.latency with Some l -> string_of_int l | None -> "-")
           (if o.ok then "PASS" else "FAIL")))
    r.outcomes;
  Buffer.add_string b
    (Printf.sprintf
       "\n   fault leg: %d transitions, %d epochs, fingerprint %s telemetry\n"
       r.fault_transitions r.fault_stats.Epoch_loop.epochs
       (if r.fault_fp_match then "unchanged by" else "PERTURBED by"));
  Buffer.add_string b
    (Printf.sprintf
       "   control leg: %d transitions, %d watchdog alerts (want 0/0), \
        fingerprint %s telemetry\n"
       r.control_transitions r.control_watchdog
       (if r.control_fp_match then "unchanged by" else "PERTURBED by"));
  Buffer.add_string b
    (Printf.sprintf "\n   all checks: %s\n"
       (if all_pass r then "PASS" else "FAIL"));
  Buffer.contents b

let json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"windows\": [";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"from\":%d,\"until\":%d,\"fault\":\"%s\",\"rule\":\"%s\",\
            \"alert_epoch\":%s,\"latency\":%s,\"pass\":%b}"
           o.window.w_from o.window.w_until
           (Obs.Json.escape o.window.w_fault)
           (Obs.Json.escape o.window.w_rule)
           (match o.alert_epoch with
           | Some e -> string_of_int e
           | None -> "null")
           (match o.latency with Some l -> string_of_int l | None -> "null")
           o.ok))
    r.outcomes;
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"fault_transitions\": %d,\n  \"control_transitions\": %d,\n\
       \  \"control_watchdog\": %d,\n  \"fault_fingerprint_match\": %b,\n\
       \  \"control_fingerprint_match\": %b,\n  \"pass\": %b\n}\n"
       r.fault_transitions r.control_transitions r.control_watchdog
       r.fault_fp_match r.control_fp_match (all_pass r));
  Buffer.contents b
