type reduction = {
  original_vars : int;
  kept : int array; (* reduced index -> original index *)
  fixed : (int * float) list; (* original index, value *)
  rows_dropped : int;
  objective_shift : float; (* contribution of fixed vars, original sense *)
  maximize : bool;
}

type outcome =
  | Reduced of Model.t * reduction
  | Infeasible of string
  | Unbounded of string

let tol = 1e-12

(* Work on a mutable row representation. *)
type work_row = {
  mutable terms : (float * int) list; (* coeff, original var *)
  sense : Model.sense;
  mutable rhs : float;
  mutable live : bool;
}

let reduce model =
  let nvars = Model.num_vars model in
  let nrows = Model.num_constraints model in
  let rows =
    Array.init nrows (fun r ->
        let expr, sense, rhs = Model.constraint_row model r in
        (* merge duplicate terms *)
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (c, v) ->
            let v = (v : Model.var :> int) in
            let prev = try Hashtbl.find tbl v with Not_found -> 0.0 in
            Hashtbl.replace tbl v (prev +. c))
          expr;
        let terms =
          Hashtbl.fold (fun v c acc -> if Float.abs c > tol then (c, v) :: acc else acc) tbl []
        in
        { terms; sense; rhs; live = true })
  in
  let dir, obj_expr, obj_const = Model.objective model in
  let maximize = dir = `Maximize in
  let obj = Array.make nvars 0.0 in
  List.iter
    (fun (c, v) -> obj.((v : Model.var :> int)) <- obj.((v : Model.var :> int)) +. c)
    obj_expr;
  let fixed_value = Array.make nvars nan in
  let fixed = ref [] in
  let rows_dropped = ref 0 in
  let infeasible = ref None in
  let fix v value =
    if Float.is_nan fixed_value.(v) then begin
      if value < -1e-9 then
        infeasible :=
          Some (Printf.sprintf "variable %d forced to %g < 0" v value)
      else begin
        fixed_value.(v) <- value;
        fixed := (v, value) :: !fixed;
        (* substitute into every live row *)
        Array.iter
          (fun row ->
            if row.live then begin
              let coeff = ref 0.0 in
              row.terms <-
                List.filter
                  (fun (c, v') ->
                    if v' = v then begin
                      coeff := !coeff +. c;
                      false
                    end
                    else true)
                  row.terms;
              if !coeff <> 0.0 then row.rhs <- row.rhs -. (!coeff *. value)
            end)
          rows
      end
    end
    else if Float.abs (fixed_value.(v) -. value) > 1e-7 then
      infeasible :=
        Some
          (Printf.sprintf "variable %d fixed to both %g and %g" v
             fixed_value.(v) value)
  in
  (* fixed-point loop over the cheap reductions *)
  let changed = ref true in
  while !changed && !infeasible = None do
    changed := false;
    Array.iter
      (fun row ->
        if row.live && !infeasible = None then begin
          match row.terms with
          | [] ->
            let ok =
              match row.sense with
              | Model.Le -> row.rhs >= -1e-9
              | Model.Ge -> row.rhs <= 1e-9
              | Model.Eq -> Float.abs row.rhs <= 1e-9
            in
            if ok then begin
              row.live <- false;
              incr rows_dropped;
              changed := true
            end
            else
              infeasible :=
                Some
                  (Printf.sprintf "contradictory empty row (rhs %g)" row.rhs)
          | [ (a, v) ] when row.sense = Model.Eq ->
            fix v (row.rhs /. a);
            row.live <- false;
            incr rows_dropped;
            changed := true
          | _ -> ()
        end)
      rows
  done;
  match !infeasible with
  | Some msg -> Infeasible msg
  | None -> (
    (* drop exact duplicate rows *)
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun row ->
        if row.live then begin
          let canon =
            ( List.sort compare row.terms,
              row.sense,
              Float.round (row.rhs *. 1e9) )
          in
          if Hashtbl.mem seen canon then begin
            row.live <- false;
            incr rows_dropped
          end
          else Hashtbl.add seen canon ()
        end)
      rows;
    (* detect free columns *)
    let appears = Array.make nvars false in
    Array.iter
      (fun row ->
        if row.live then
          List.iter (fun (_, v) -> appears.(v) <- true) row.terms)
      rows;
    let unbounded = ref None in
    for v = 0 to nvars - 1 do
      if Float.is_nan fixed_value.(v) && not appears.(v) then begin
        (* minimisation cost of v *)
        let cost = if maximize then -.obj.(v) else obj.(v) in
        if cost < -.tol then
          unbounded :=
            Some (Printf.sprintf "free variable %d with improving cost" v)
        else begin
          fixed_value.(v) <- 0.0;
          fixed := (v, 0.0) :: !fixed
        end
      end
    done;
    match !unbounded with
    | Some msg -> Unbounded msg
    | None ->
      (* build the reduced model *)
      let kept =
        Array.of_list
          (List.filter
             (fun v -> Float.is_nan fixed_value.(v))
             (List.init nvars (fun v -> v)))
      in
      let new_index = Array.make nvars (-1) in
      Array.iteri (fun idx v -> new_index.(v) <- idx) kept;
      let reduced = Model.create ~name:(Model.name model ^ "-presolved") () in
      let new_vars =
        Array.map (fun v -> Model.add_var ~name:(Model.var_name model (Model.var_of_int model v)) reduced) kept
      in
      ignore new_vars;
      Array.iter
        (fun row ->
          if row.live then begin
            let expr =
              List.map
                (fun (c, v) -> (c, Model.var_of_int reduced new_index.(v)))
                row.terms
            in
            ignore (Model.add_constraint reduced expr row.sense row.rhs)
          end)
        rows;
      let objective_shift =
        List.fold_left
          (fun acc (v, value) -> acc +. (obj.(v) *. value))
          0.0 !fixed
      in
      let reduced_obj =
        Array.to_list kept
        |> List.filter_map (fun v ->
               if Float.abs obj.(v) > tol then
                 Some (obj.(v), Model.var_of_int reduced new_index.(v))
               else None)
      in
      let constant = obj_const +. objective_shift in
      if maximize then Model.maximize reduced ~constant reduced_obj
      else Model.minimize reduced ~constant reduced_obj;
      Reduced
        ( reduced,
          { original_vars = nvars;
            kept;
            fixed = !fixed;
            rows_dropped = !rows_dropped;
            objective_shift;
            maximize;
          } ))

let restore red (sol : Solution.t) =
  let values = Array.make red.original_vars 0.0 in
  Array.iteri (fun idx v -> values.(v) <- sol.Solution.values.(idx)) red.kept;
  List.iter (fun (v, value) -> values.(v) <- value) red.fixed;
  (* Variable indices shift under reduction, so neither the duals nor the
     basis survive the round trip. *)
  { sol with Solution.values; duals = None; basis = None }

let stats red =
  Printf.sprintf "%d rows dropped, %d variables fixed, %d kept"
    red.rows_dropped (List.length red.fixed) (Array.length red.kept)

let solve ?(solver = `Revised) model =
  match reduce model with
  | Infeasible _ ->
    { Solution.status = Solution.Infeasible;
      objective = nan;
      values = Array.make (Model.num_vars model) 0.0;
      iterations = 0;
      refactors = 0;
      duals = None;
      basis = None;
    }
  | Unbounded _ ->
    let _, _, _ = Model.objective model in
    let maximize = (let d, _, _ = Model.objective model in d) = `Maximize in
    { Solution.status = Solution.Unbounded;
      objective = (if maximize then infinity else neg_infinity);
      values = Array.make (Model.num_vars model) 0.0;
      iterations = 0;
      refactors = 0;
      duals = None;
      basis = None;
    }
  | Reduced (reduced, red) ->
    let sol =
      match solver with
      | `Revised -> Revised_simplex.solve reduced
      | `Dense -> Dense_simplex.solve reduced
    in
    restore red sol
