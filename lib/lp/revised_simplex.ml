let src = Logs.Src.create "lp.revised" ~doc:"Revised simplex"

module Log = (val Logs.src_log src : Logs.LOG)

(* Process-wide effort counters, shared with every profile/bench exporter;
   the per-state [iterations]/[refactors] fields below steer the algorithm
   (iteration limits, refactorization cadence) and feed [Solution.t]. *)
let c_pivots = Obs.Counter.make "lp.pivots"
let c_refactors = Obs.Counter.make "lp.refactors"

type warm_basis = int array

let feas_tol = 1e-7
let opt_tol = 1e-7
let pivot_tol = 1e-8

(* Factorization tolerances: [markowitz_tol] is the relative threshold-pivoting
   bound inside a candidate column, [drop_tol] drops fill-in that cancels to
   noise, [singular_tol] declares a column numerically empty, and
   [eta_piv_tol] forces an early refactorization instead of accepting a
   fragile update pivot. *)
let markowitz_tol = 0.1
let drop_tol = 1e-13
let singular_tol = 1e-11
let eta_piv_tol = 1e-7

(* Column numbering: [0 .. ncols-1] structural, [ncols + r] slack/surplus of
   row [r] (absent for equality rows), [ncols + nrows + r] artificial of row
   [r]. *)

type problem = {
  nrows : int;
  ncols : int;
  col_rows : int array array; (* structural columns, rows normalised *)
  col_vals : float array array;
  rhs : float array; (* all >= 0 after normalisation *)
  slack_sign : float array; (* +1 (Le), -1 (Ge), 0 (Eq) per row *)
  obj : float array; (* structural minimisation costs *)
  flipped : bool array; (* rows negated during normalisation *)
}

let normalise (std : Std_form.t) =
  let nrows = std.Std_form.nrows and ncols = std.Std_form.ncols in
  let flip = Array.make nrows false in
  let rhs = Array.copy std.Std_form.rhs in
  let slack_sign = Array.make nrows 0.0 in
  for r = 0 to nrows - 1 do
    if rhs.(r) < 0.0 then begin
      flip.(r) <- true;
      rhs.(r) <- -.rhs.(r)
    end;
    let sense = std.Std_form.senses.(r) in
    let sign =
      match sense with
      | Std_form.Le -> 1.0
      | Std_form.Ge -> -1.0
      | Std_form.Eq -> 0.0
    in
    slack_sign.(r) <- (if flip.(r) then -.sign else sign)
  done;
  let col_rows = Array.map Array.copy std.Std_form.col_rows in
  let col_vals = Array.map Array.copy std.Std_form.col_vals in
  Array.iteri
    (fun c rows ->
      Array.iteri
        (fun k r -> if flip.(r) then col_vals.(c).(k) <- -.col_vals.(c).(k))
        rows)
    col_rows;
  { nrows;
    ncols;
    col_rows;
    col_vals;
    rhs;
    slack_sign;
    obj = Array.copy std.Std_form.obj;
    flipped = flip;
  }

(* Sparse representation of an arbitrary (structural / slack / artificial)
   column. *)
let column p c =
  if c < p.ncols then (p.col_rows.(c), p.col_vals.(c))
  else if c < p.ncols + p.nrows then begin
    let r = c - p.ncols in
    ([| r |], [| p.slack_sign.(r) |])
  end
  else begin
    let r = c - p.ncols - p.nrows in
    ([| r |], [| 1.0 |])
  end

(* ---------- sparse LU factors and the eta file ----------

   The basis inverse is never formed.  At (re)factorization time a
   Markowitz-ordered sparse Gaussian elimination produces triangular factors
   of the basis matrix; between refactorizations each pivot appends one eta
   vector (product-form update).  FTRAN/BTRAN apply the factors and the eta
   file; cost is proportional to the factor + eta fill, not nrows^2. *)

(* One product-form update: the basis column at position [e_pos] was replaced
   by a column whose FTRAN image was [d]; [e_piv = d.(e_pos)], and
   [e_idx]/[e_val] are the other non-zeros of [d] (by basis position). *)
type eta = {
  e_pos : int;
  e_piv : float;
  e_idx : int array;
  e_val : float array;
}

(* LU factors as the pivot sequence of the elimination.  Step [k] pivoted on
   constraint row [piv_row.(k)] and basis position [piv_pos.(k)] with pivot
   value [piv_val.(k)]; [l_rows]/[l_vals] are the below-pivot multipliers (by
   constraint row), [u_pos]/[u_vals] the remaining entries of the pivot row
   (by basis position, pivoted at later steps).  [ut_steps]/[ut_vals] index U
   by column for the transposed solve: entry [i] of step [j] says that step
   [ut_steps.(j).(i) < j] has coefficient [ut_vals.(j).(i)] at position
   [piv_pos.(j)]. *)
type lu = {
  piv_row : int array;
  piv_pos : int array;
  piv_val : float array;
  l_rows : int array array;
  l_vals : float array array;
  u_pos : int array array;
  u_vals : float array array;
  ut_steps : int array array;
  ut_vals : float array array;
}

let empty_lu =
  { piv_row = [||];
    piv_pos = [||];
    piv_val = [||];
    l_rows = [||];
    l_vals = [||];
    u_pos = [||];
    u_vals = [||];
    ut_steps = [||];
    ut_vals = [||];
  }

type state = {
  p : problem;
  total : int; (* ncols + 2 * nrows *)
  basis : int array; (* column per basis position *)
  in_basis : bool array;
  mutable lu : lu;
  mutable etas : eta array; (* growable; [neta] entries are live *)
  mutable neta : int;
  xb : float array;
  wrow : float array; (* scratch over constraint rows *)
  wpos : float array; (* scratch over basis positions *)
  mutable iterations : int;
  mutable refactors : int;
  mutable degenerate_streak : int;
  mutable bland : bool;
  mutable cursor : int; (* partial-pricing start column *)
}

let n_of st = st.p.nrows

let push_eta st eta =
  let cap = Array.length st.etas in
  if st.neta >= cap then begin
    let etas = Array.make (max 8 (2 * cap)) eta in
    Array.blit st.etas 0 etas 0 cap;
    st.etas <- etas
  end;
  st.etas.(st.neta) <- eta;
  st.neta <- st.neta + 1

(* Forward L solve, in place on a dense constraint-row vector. *)
let lu_apply_l lu w =
  let n = Array.length lu.piv_row in
  for k = 0 to n - 1 do
    let t = Array.unsafe_get w (Array.unsafe_get lu.piv_row k) in
    if t <> 0.0 then begin
      let rows = lu.l_rows.(k) and vals = lu.l_vals.(k) in
      for i = 0 to Array.length rows - 1 do
        let r = Array.unsafe_get rows i in
        Array.unsafe_set w r
          (Array.unsafe_get w r -. (Array.unsafe_get vals i *. t))
      done
    end
  done

(* Backward U solve: reads the L-solved row vector [w], writes every basis
   position of [d]. *)
let lu_apply_u lu w d =
  let n = Array.length lu.piv_row in
  for k = n - 1 downto 0 do
    let s = ref (Array.unsafe_get w lu.piv_row.(k)) in
    let pos = lu.u_pos.(k) and uv = lu.u_vals.(k) in
    for i = 0 to Array.length pos - 1 do
      s :=
        !s
        -. (Array.unsafe_get uv i
           *. Array.unsafe_get d (Array.unsafe_get pos i))
    done;
    d.(lu.piv_pos.(k)) <- !s /. lu.piv_val.(k)
  done

(* d = B^-1 * A_c for a sparse column, through the factors + eta file. *)
let ftran st (rows, vals) d =
  let n = n_of st in
  let w = st.wrow in
  Array.fill w 0 n 0.0;
  for k = 0 to Array.length rows - 1 do
    w.(rows.(k)) <- w.(rows.(k)) +. vals.(k)
  done;
  lu_apply_l st.lu w;
  lu_apply_u st.lu w d;
  for e = 0 to st.neta - 1 do
    let eta = Array.unsafe_get st.etas e in
    let xr = d.(eta.e_pos) /. eta.e_piv in
    d.(eta.e_pos) <- xr;
    if xr <> 0.0 then begin
      let idx = eta.e_idx and ev = eta.e_val in
      for i = 0 to Array.length idx - 1 do
        let r = Array.unsafe_get idx i in
        Array.unsafe_set d r
          (Array.unsafe_get d r -. (Array.unsafe_get ev i *. xr))
      done
    end
  done

(* y = cb^T B^-1 where cb is given per basis position: eta transposes in
   reverse order, then the transposed U and L solves. *)
let btran st cb y =
  let n = n_of st in
  let lu = st.lu in
  let v = st.wpos in
  Array.blit cb 0 v 0 n;
  for e = st.neta - 1 downto 0 do
    let eta = Array.unsafe_get st.etas e in
    let idx = eta.e_idx and ev = eta.e_val in
    let acc = ref v.(eta.e_pos) in
    for i = 0 to Array.length idx - 1 do
      acc := !acc -. (Array.unsafe_get ev i *. Array.unsafe_get v (Array.unsafe_get idx i))
    done;
    v.(eta.e_pos) <- !acc /. eta.e_piv
  done;
  for k = 0 to n - 1 do
    let s = ref v.(lu.piv_pos.(k)) in
    let us = lu.ut_steps.(k) and uv = lu.ut_vals.(k) in
    for i = 0 to Array.length us - 1 do
      s :=
        !s
        -. (Array.unsafe_get uv i
           *. Array.unsafe_get y lu.piv_row.(Array.unsafe_get us i))
    done;
    y.(lu.piv_row.(k)) <- !s /. lu.piv_val.(k)
  done;
  for k = n - 1 downto 0 do
    let rows = lu.l_rows.(k) and vals = lu.l_vals.(k) in
    let acc = ref y.(lu.piv_row.(k)) in
    for i = 0 to Array.length rows - 1 do
      acc := !acc -. (Array.unsafe_get vals i *. Array.unsafe_get y (Array.unsafe_get rows i))
    done;
    y.(lu.piv_row.(k)) <- !acc
  done

let reduced_cost st cost y c =
  let rows, vals = column st.p c in
  let acc = ref (cost c) in
  for k = 0 to Array.length rows - 1 do
    acc := !acc -. (Array.unsafe_get y (Array.unsafe_get rows k)
                    *. Array.unsafe_get vals k)
  done;
  !acc

(* Refactorize: Markowitz-ordered sparse LU of the current basis matrix,
   eta file cleared, xb recomputed from scratch.  Returns [false] when the
   basis matrix is numerically singular.  [log_drift] compares the fresh xb
   with the incrementally maintained one (update-drift telemetry). *)
let factorize ?(log_drift = false) st =
  let p = st.p in
  let n = p.nrows in
  (* Active submatrix, column-wise, with a row-presence index. *)
  let colh = Array.init n (fun _ -> Hashtbl.create 8) in
  let rowset = Array.init n (fun _ -> Hashtbl.create 8) in
  let colcnt = Array.make n 0 and rowcnt = Array.make n 0 in
  for pos = 0 to n - 1 do
    let rows, vals = column p st.basis.(pos) in
    for k = 0 to Array.length rows - 1 do
      if vals.(k) <> 0.0 then begin
        Hashtbl.replace colh.(pos) rows.(k) vals.(k);
        Hashtbl.replace rowset.(rows.(k)) pos ()
      end
    done
  done;
  for j = 0 to n - 1 do
    colcnt.(j) <- Hashtbl.length colh.(j)
  done;
  for r = 0 to n - 1 do
    rowcnt.(r) <- Hashtbl.length rowset.(r)
  done;
  let col_active = Array.make n true in
  let piv_row = Array.make n (-1) and piv_pos = Array.make n (-1) in
  let piv_val = Array.make n 0.0 in
  let l_rows = Array.make n [||] and l_vals = Array.make n [||] in
  let u_pos = Array.make n [||] and u_vals = Array.make n [||] in
  let ok = ref true in
  (try
     for step = 0 to n - 1 do
       (* Candidate columns: sparsest active ones (count <= min + 1), a
          bounded handful, searched with threshold pivoting for the best
          Markowitz count (rowcnt-1)*(colcnt-1). *)
       let mc = ref max_int in
       for j = 0 to n - 1 do
         if col_active.(j) && colcnt.(j) < !mc then mc := colcnt.(j)
       done;
       if !mc = max_int || !mc = 0 then raise Exit;
       let cands = Array.make 8 (-1) in
       let ncand = ref 0 in
       let j = ref 0 in
       while !ncand < 8 && !j < n do
         if col_active.(!j) && colcnt.(!j) <= !mc + 1 then begin
           cands.(!ncand) <- !j;
           incr ncand
         end;
         incr j
       done;
       let best_score = ref max_int and best_v = ref 0.0 in
       let br = ref (-1) and bc = ref (-1) in
       for ci = 0 to !ncand - 1 do
         let jc = cands.(ci) in
         let colmax =
           Hashtbl.fold
             (fun _ v acc -> Float.max (Float.abs v) acc)
             colh.(jc) 0.0
         in
         if colmax > singular_tol then
           Hashtbl.iter
             (fun r v ->
               if Float.abs v >= markowitz_tol *. colmax then begin
                 let score = (rowcnt.(r) - 1) * (colcnt.(jc) - 1) in
                 if
                   score < !best_score
                   || (score = !best_score
                      && (Float.abs v > Float.abs !best_v
                         || (Float.abs v = Float.abs !best_v
                            && (r, jc) < (!br, !bc))))
                 then begin
                   best_score := score;
                   best_v := v;
                   br := r;
                   bc := jc
                 end
               end)
             colh.(jc)
       done;
       if !bc < 0 then raise Exit;
       let pr = !br and pc = !bc in
       let pv = Hashtbl.find colh.(pc) pr in
       piv_row.(step) <- pr;
       piv_pos.(step) <- pc;
       piv_val.(step) <- pv;
       (* Pivot row across the other active columns: the U row. *)
       let urow = ref [] in
       Hashtbl.iter
         (fun j () -> if j <> pc then urow := (j, Hashtbl.find colh.(j) pr) :: !urow)
         rowset.(pr);
       let urow = List.sort compare !urow in
       u_pos.(step) <- Array.of_list (List.map fst urow);
       u_vals.(step) <- Array.of_list (List.map snd urow);
       (* Pivot column below the pivot: the L multipliers. *)
       let lcol = ref [] in
       Hashtbl.iter
         (fun r v -> if r <> pr then lcol := (r, v /. pv) :: !lcol)
         colh.(pc);
       let lcol = List.sort compare !lcol in
       l_rows.(step) <- Array.of_list (List.map fst lcol);
       l_vals.(step) <- Array.of_list (List.map snd lcol);
       (* Deactivate the pivot column and row. *)
       col_active.(pc) <- false;
       Hashtbl.iter
         (fun r _ ->
           if r <> pr then begin
             Hashtbl.remove rowset.(r) pc;
             rowcnt.(r) <- rowcnt.(r) - 1
           end)
         colh.(pc);
       (* Right-looking elimination of row [pr] from the remaining columns. *)
       List.iter
         (fun (jc, vpj) ->
           Hashtbl.remove colh.(jc) pr;
           colcnt.(jc) <- colcnt.(jc) - 1;
           List.iter
             (fun (r, m) ->
               let delta = m *. vpj in
               match Hashtbl.find_opt colh.(jc) r with
               | Some prev ->
                 let nv = prev -. delta in
                 if Float.abs nv <= drop_tol then begin
                   Hashtbl.remove colh.(jc) r;
                   colcnt.(jc) <- colcnt.(jc) - 1;
                   Hashtbl.remove rowset.(r) jc;
                   rowcnt.(r) <- rowcnt.(r) - 1
                 end
                 else Hashtbl.replace colh.(jc) r nv
               | None ->
                 let nv = -.delta in
                 if Float.abs nv > drop_tol then begin
                   Hashtbl.replace colh.(jc) r nv;
                   colcnt.(jc) <- colcnt.(jc) + 1;
                   Hashtbl.replace rowset.(r) jc ();
                   rowcnt.(r) <- rowcnt.(r) + 1
                 end)
             lcol)
         urow
     done
   with Exit -> ok := false);
  if !ok then begin
    (* Column-wise index of U for the transposed solve. *)
    let step_of = Array.make n (-1) in
    for k = 0 to n - 1 do
      step_of.(piv_pos.(k)) <- k
    done;
    let ut = Array.make n [] in
    for k = 0 to n - 1 do
      let pos = u_pos.(k) and uv = u_vals.(k) in
      for i = 0 to Array.length pos - 1 do
        let j = step_of.(pos.(i)) in
        ut.(j) <- (k, uv.(i)) :: ut.(j)
      done
    done;
    st.lu <-
      { piv_row;
        piv_pos;
        piv_val;
        l_rows;
        l_vals;
        u_pos;
        u_vals;
        ut_steps = Array.map (fun l -> Array.of_list (List.rev_map fst l)) ut;
        ut_vals = Array.map (fun l -> Array.of_list (List.rev_map snd l)) ut;
      };
    st.neta <- 0;
    st.refactors <- st.refactors + 1;
    Obs.Counter.incr c_refactors;
    (* xb = B^-1 rhs, from scratch. *)
    let w = st.wrow in
    Array.blit p.rhs 0 w 0 n;
    lu_apply_l st.lu w;
    if log_drift then begin
      Array.blit st.xb 0 st.wpos 0 n;
      lu_apply_u st.lu w st.xb;
      let drift = ref 0.0 in
      for r = 0 to n - 1 do
        drift := Float.max !drift (Float.abs (st.xb.(r) -. st.wpos.(r)))
      done;
      if !drift > 1e-6 then
        Log.warn (fun f ->
            f "refactorization absorbed xb drift %.3g after %d pivots" !drift
              st.iterations)
    end
    else lu_apply_u st.lu w st.xb
  end;
  !ok

(* Pivot: basis position [leave] is replaced by column [enter] whose ftran
   direction is [d]; [theta] is the step length.  Appends one eta vector and
   updates xb along the (sparse) direction. *)
let pivot st leave enter d theta =
  let n = n_of st in
  let nnz = ref 0 in
  for r = 0 to n - 1 do
    if r <> leave && Float.abs d.(r) > drop_tol then incr nnz
  done;
  let e_idx = Array.make !nnz 0 and e_val = Array.make !nnz 0.0 in
  let i = ref 0 in
  for r = 0 to n - 1 do
    if r <> leave && Float.abs d.(r) > drop_tol then begin
      e_idx.(!i) <- r;
      e_val.(!i) <- d.(r);
      incr i
    end
  done;
  push_eta st { e_pos = leave; e_piv = d.(leave); e_idx; e_val };
  for k = 0 to !nnz - 1 do
    let r = e_idx.(k) in
    st.xb.(r) <- st.xb.(r) -. (theta *. e_val.(k))
  done;
  st.xb.(leave) <- theta;
  st.in_basis.(st.basis.(leave)) <- false;
  st.in_basis.(enter) <- true;
  st.basis.(leave) <- enter;
  st.iterations <- st.iterations + 1;
  Obs.Counter.incr c_pivots;
  if theta <= feas_tol then begin
    st.degenerate_streak <- st.degenerate_streak + 1;
    if st.degenerate_streak > 60 then st.bland <- true
  end
  else begin
    st.degenerate_streak <- 0;
    st.bland <- false
  end

(* Entering-column selection.  [allowed c] restricts the candidate set (used
   to ban artificials in phase 2).  Partial pricing: scan from the rotating
   cursor, keep the most negative reduced cost seen, and stop early after a
   full block has been scanned with a viable candidate in hand.  The dual
   vector [y] comes from the sparse BTRAN above, so each scan step is a
   sparse dot product.  In Bland mode: lowest-index negative column, full
   determinism. *)
let price st cost allowed y =
  let total = st.total in
  if st.bland then begin
    let found = ref (-1) in
    (try
       for c = 0 to total - 1 do
         if (not st.in_basis.(c)) && allowed c then begin
           let rc = reduced_cost st cost y c in
           if rc < -.opt_tol then begin
             found := c;
             raise Exit
           end
         end
       done
     with Exit -> ());
    !found
  end
  else begin
    let block = 512 in
    let best = ref (-1) and best_rc = ref (-.opt_tol) in
    let scanned = ref 0 in
    let c = ref st.cursor in
    (try
       while !scanned < total do
         let col = !c in
         if (not st.in_basis.(col)) && allowed col then begin
           let rc = reduced_cost st cost y col in
           if rc < !best_rc then begin
             best_rc := rc;
             best := col
           end
         end;
         incr scanned;
         c := !c + 1;
         if !c >= total then c := 0;
         if !scanned mod block = 0 && !best >= 0 then raise Exit
       done
     with Exit -> ());
    st.cursor <- !c;
    !best
  end

(* Ratio test.  Returns [None] when unbounded.  Prefers, among minimum-ratio
   rows, the largest pivot magnitude for stability; in Bland mode the
   smallest basic column index. *)
let ratio_test st d =
  let n = n_of st in
  let best_ratio = ref infinity in
  let leave = ref (-1) in
  for r = 0 to n - 1 do
    let dr = d.(r) in
    if dr > pivot_tol then begin
      let ratio = st.xb.(r) /. dr in
      let ratio = if ratio < 0.0 then 0.0 else ratio in
      if ratio < !best_ratio -. 1e-10 then begin
        best_ratio := ratio;
        leave := r
      end
      else if ratio <= !best_ratio +. 1e-10 && !leave >= 0 then begin
        let better =
          if st.bland then st.basis.(r) < st.basis.(!leave)
          else Float.abs dr > Float.abs d.(!leave)
        in
        if better then begin
          if ratio < !best_ratio then best_ratio := ratio;
          leave := r
        end
      end
    end
  done;
  if !leave = -1 then None else Some (!leave, !best_ratio)

type phase_outcome = P_optimal | P_unbounded | P_limit | P_deadline

(* The deadline is wall-clock time on the obs monotonic clock (callers
   document wall-clock budgets; the CPU-second [Sys.time] this used to read
   never fires on time under sleeps or IO): checked every 32 pivots to keep
   the clock read off the pivot hot path, and once before the very first
   pivot so a zero deadline aborts on the first check. *)
let past_deadline st stop_at =
  match stop_at with
  | None -> false
  | Some t -> st.iterations land 31 = 0 && Obs.Clock.now_s () >= t

let h_pivot = Obs.Histogram.make "lp.pivot_ns"

let run_phase st cost allowed ~max_iterations ~refactor ~stop_at =
  let n = n_of st in
  let y = Array.make n 0.0 in
  let cb = Array.make n 0.0 in
  let d = Array.make n 0.0 in
  (* One priced-and-pivoted iteration attempt, split out of [loop] so the
     flight recorder can time it ([`Continue] = keep iterating). *)
  let iterate () =
    if st.neta >= refactor then
      if not (factorize ~log_drift:true st) then
        failwith "Revised_simplex: basis became singular";
    for r = 0 to n - 1 do
      cb.(r) <- cost st.basis.(r)
    done;
    btran st cb y;
    let enter = price st cost allowed y in
    if enter < 0 then `Done P_optimal
    else begin
      ftran st (column st.p enter) d;
      match ratio_test st d with
      | None -> `Done P_unbounded
      | Some (leave, theta) ->
        if Float.abs d.(leave) < eta_piv_tol && st.neta > 0 then begin
          (* Fragile update pivot: rebuild the factors and re-derive the
             direction from them instead of the drifted eta file. *)
          if not (factorize ~log_drift:true st) then
            failwith "Revised_simplex: basis became singular";
          `Continue
        end
        else begin
          pivot st leave enter d theta;
          `Continue
        end
    end
  in
  let rec loop () =
    if st.iterations >= max_iterations then P_limit
    else if past_deadline st stop_at then P_deadline
    else begin
      let t0 = if Obs.Histogram.enabled () then Obs.Clock.now_ns () else 0 in
      let r = iterate () in
      if t0 > 0 then
        Obs.Histogram.observe h_pivot (Obs.Clock.elapsed_ns ~since:t0);
      match r with
      | `Continue -> loop ()
      | `Done outcome -> outcome
    end
  in
  loop ()

let make_state p =
  let n = p.nrows in
  let total = p.ncols + (2 * n) in
  { p;
    total;
    basis = Array.make n (-1);
    in_basis = Array.make total false;
    lu = empty_lu;
    etas = [||];
    neta = 0;
    xb = Array.copy p.rhs;
    wrow = Array.make n 0.0;
    wpos = Array.make n 0.0;
    iterations = 0;
    refactors = 0;
    degenerate_streak = 0;
    bland = false;
    cursor = 0;
  }

(* Default phase-1 start: slack where the slack sign is +1, artificial
   otherwise — a diagonal basis, so the factorization cannot fail. *)
let install_cold_basis st =
  let p = st.p in
  Array.fill st.in_basis 0 st.total false;
  for r = 0 to p.nrows - 1 do
    let c = if p.slack_sign.(r) = 1.0 then p.ncols + r else p.ncols + p.nrows + r in
    st.basis.(r) <- c;
    st.in_basis.(c) <- true
  done;
  if not (factorize st) then
    failwith "Revised_simplex: cold basis factorization failed"

let try_warm_basis st (wb : warm_basis) =
  let p = st.p in
  if Array.length wb <> p.nrows then false
  else begin
    let ok = ref true in
    Array.fill st.in_basis 0 st.total false;
    Array.iteri
      (fun r c ->
        let col =
          if c = -1 then
            if p.slack_sign.(r) = 0.0 then -2 (* equality row has no slack *)
            else p.ncols + r
          else if c >= 0 && c < p.ncols then c
          else -2
        in
        if col = -2 || (col >= 0 && st.in_basis.(col)) then ok := false
        else begin
          st.basis.(r) <- col;
          st.in_basis.(col) <- true
        end)
      wb;
    if not !ok then false
    else if not (factorize st) then false
    else Array.for_all (fun v -> v >= -.feas_tol) st.xb
  end

let artificial_start st = st.p.ncols + st.p.nrows

(* After phase 1: pivot zero-level artificials out of the basis wherever a
   non-artificial column has a non-zero coefficient in their row of
   B^-1 A.  The needed row of B^-1 is one transposed solve (BTRAN of a unit
   vector); candidates are then sparse dot products against it. *)
let expel_artificials st =
  let p = st.p in
  let n = p.nrows in
  let first_art = artificial_start st in
  let unit = Array.make n 0.0 in
  let rowvec = Array.make n 0.0 in
  let d = Array.make n 0.0 in
  for pos = 0 to n - 1 do
    if st.basis.(pos) >= first_art then begin
      Array.fill unit 0 n 0.0;
      unit.(pos) <- 1.0;
      btran st unit rowvec;
      let found = ref (-1) in
      let c = ref 0 in
      while !found < 0 && !c < first_art do
        if not st.in_basis.(!c) then begin
          (* element [pos] of B^-1 A_c *)
          let rows, vals = column p !c in
          let acc = ref 0.0 in
          for k = 0 to Array.length rows - 1 do
            acc := !acc +. (rowvec.(rows.(k)) *. vals.(k))
          done;
          if Float.abs !acc > 1e-7 then found := !c
        end;
        incr c
      done;
      (* [-1] means the row is redundant; the artificial stays basic at
         zero and phase 2 never lets it grow. *)
      if !found >= 0 then begin
        let c = !found in
        ftran st (column p c) d;
        pivot st pos c d st.xb.(pos)
      end
    end
  done

(* The final basis in warm-start format: slacks at their own rows, the
   structural basics on the remaining rows.  Only the column set matters (a
   permutation of basis positions yields the same basis matrix), so the
   assignment is canonical: ascending structural indices onto ascending free
   rows.  Not exportable while an artificial is basic. *)
let export_basis st =
  let p = st.p in
  let first_art = artificial_start st in
  let out = Array.make p.nrows (-2) in
  let structs = ref [] in
  let ok = ref true in
  Array.iter
    (fun c ->
      if c < p.ncols then structs := c :: !structs
      else if c < first_art then out.(c - p.ncols) <- -1
      else ok := false)
    st.basis;
  if not !ok then None
  else begin
    let structs = ref (List.sort compare !structs) in
    for r = 0 to p.nrows - 1 do
      if out.(r) = -2 then
        match !structs with
        | c :: rest ->
          out.(r) <- c;
          structs := rest
        | [] -> ()
    done;
    if Array.exists (fun c -> c = -2) out then None else Some out
  end

let solve ?(max_iterations = 200_000) ?deadline ?warm_basis ?crash_basis
    ?(refactor = 128) model =
  Obs.Span.with_ "lp.solve" @@ fun () ->
  let stop_at =
    match deadline with
    | None -> None
    | Some d ->
      if d < 0.0 then invalid_arg "Revised_simplex.solve: negative deadline";
      Some (Obs.Clock.now_s () +. d)
  in
  let std = Std_form.of_model model in
  let p = normalise std in
  let st = make_state p in
  let first_art = artificial_start st in
  let warm_ok =
    let try_basis label = function
      | None -> false
      | Some wb ->
        let ok = try_warm_basis st wb in
        if not ok then
          Log.info (fun f -> f "%s basis rejected; trying next start" label);
        ok
    in
    try_basis "warm" warm_basis || try_basis "crash" crash_basis
  in
  (* Multipliers of the original rows: y = cB^T B^-1 in the normalised
     space, unflipped, and negated back when the model maximised. *)
  let compute_duals () =
    let n = p.nrows in
    let cb = Array.make n 0.0 in
    Array.iteri
      (fun r c -> cb.(r) <- (if c < p.ncols then p.obj.(c) else 0.0))
      st.basis;
    let y = Array.make n 0.0 in
    btran st cb y;
    Array.mapi
      (fun r yr ->
        let yr = if p.flipped.(r) then -.yr else yr in
        if std.Std_form.maximize then -.yr else yr)
      y
  in
  let finish status =
    let values = Array.make p.ncols 0.0 in
    Array.iteri
      (fun r c -> if c < p.ncols then values.(c) <- max 0.0 st.xb.(r))
      st.basis;
    Log.info (fun f ->
        f "solve %s: status=%s iterations=%d refactors=%d etas=%d"
          (Model.name model)
          (Solution.status_to_string status)
          st.iterations st.refactors st.neta);
    { Solution.status;
      objective = Std_form.objective_value std values;
      values;
      iterations = st.iterations;
      refactors = st.refactors;
      duals =
        (if status = Solution.Optimal then Some (compute_duals ()) else None);
      basis = export_basis st;
    }
  in
  let infeasible () =
    { Solution.status = Solution.Infeasible;
      objective = nan;
      values = Array.make p.ncols 0.0;
      iterations = st.iterations;
      refactors = st.refactors;
      duals = None;
      basis = None;
    }
  in
  let phase2 () =
    let cost c = if c < p.ncols then p.obj.(c) else 0.0 in
    let allowed c = c < first_art in
    st.bland <- false;
    st.degenerate_streak <- 0;
    match run_phase st cost allowed ~max_iterations ~refactor ~stop_at with
    | P_optimal -> finish Solution.Optimal
    | P_limit -> finish Solution.Iteration_limit
    | P_deadline -> finish Solution.Time_limit
    | P_unbounded ->
      { Solution.status = Solution.Unbounded;
        objective = (if std.Std_form.maximize then infinity else neg_infinity);
        values = Array.make p.ncols 0.0;
        iterations = st.iterations;
        refactors = st.refactors;
        duals = None;
        basis = None;
      }
  in
  if warm_ok then phase2 ()
  else begin
    install_cold_basis st;
    let any_artificial =
      Array.exists (fun c -> c >= first_art) st.basis
    in
    if not any_artificial then phase2 ()
    else begin
      let cost c = if c >= first_art then 1.0 else 0.0 in
      let allowed _ = true in
      match run_phase st cost allowed ~max_iterations ~refactor ~stop_at with
      | P_limit -> finish Solution.Iteration_limit
      | P_deadline -> finish Solution.Time_limit
      | P_unbounded -> assert false (* phase 1 is bounded below by 0 *)
      | P_optimal ->
        let level = ref 0.0 in
        Array.iteri
          (fun r c -> if c >= first_art then level := !level +. st.xb.(r))
          st.basis;
        if !level > 1e-6 then infeasible ()
        else begin
          expel_artificials st;
          phase2 ()
        end
    end
  end
