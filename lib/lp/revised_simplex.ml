let src = Logs.Src.create "lp.revised" ~doc:"Revised simplex"

module Log = (val Logs.src_log src : Logs.LOG)

type warm_basis = int array

let feas_tol = 1e-7
let opt_tol = 1e-7
let pivot_tol = 1e-8

(* Column numbering: [0 .. ncols-1] structural, [ncols + r] slack/surplus of
   row [r] (absent for equality rows), [ncols + nrows + r] artificial of row
   [r]. *)

type problem = {
  nrows : int;
  ncols : int;
  col_rows : int array array; (* structural columns, rows normalised *)
  col_vals : float array array;
  rhs : float array; (* all >= 0 after normalisation *)
  slack_sign : float array; (* +1 (Le), -1 (Ge), 0 (Eq) per row *)
  obj : float array; (* structural minimisation costs *)
  flipped : bool array; (* rows negated during normalisation *)
}

let normalise (std : Std_form.t) =
  let nrows = std.Std_form.nrows and ncols = std.Std_form.ncols in
  let flip = Array.make nrows false in
  let rhs = Array.copy std.Std_form.rhs in
  let slack_sign = Array.make nrows 0.0 in
  for r = 0 to nrows - 1 do
    if rhs.(r) < 0.0 then begin
      flip.(r) <- true;
      rhs.(r) <- -.rhs.(r)
    end;
    let sense = std.Std_form.senses.(r) in
    let sign =
      match sense with
      | Std_form.Le -> 1.0
      | Std_form.Ge -> -1.0
      | Std_form.Eq -> 0.0
    in
    slack_sign.(r) <- (if flip.(r) then -.sign else sign)
  done;
  let col_rows = Array.map Array.copy std.Std_form.col_rows in
  let col_vals = Array.map Array.copy std.Std_form.col_vals in
  Array.iteri
    (fun c rows ->
      Array.iteri
        (fun k r -> if flip.(r) then col_vals.(c).(k) <- -.col_vals.(c).(k))
        rows)
    col_rows;
  { nrows;
    ncols;
    col_rows;
    col_vals;
    rhs;
    slack_sign;
    obj = Array.copy std.Std_form.obj;
    flipped = flip;
  }

(* Sparse representation of an arbitrary (structural / slack / artificial)
   column. *)
let column p c =
  if c < p.ncols then (p.col_rows.(c), p.col_vals.(c))
  else if c < p.ncols + p.nrows then begin
    let r = c - p.ncols in
    ([| r |], [| p.slack_sign.(r) |])
  end
  else begin
    let r = c - p.ncols - p.nrows in
    ([| r |], [| 1.0 |])
  end

type state = {
  p : problem;
  total : int; (* ncols + 2 * nrows *)
  basis : int array; (* column per basis position *)
  in_basis : bool array;
  binv : float array; (* row-major nrows x nrows *)
  xb : float array;
  mutable iterations : int;
  mutable degenerate_streak : int;
  mutable bland : bool;
  mutable cursor : int; (* partial-pricing start column *)
}

let n_of st = st.p.nrows

(* d = B^-1 * A_c for a sparse column. *)
let ftran st (rows, vals) d =
  let n = n_of st in
  Array.fill d 0 n 0.0;
  let nnz = Array.length rows in
  for k = 0 to nnz - 1 do
    let col = Array.unsafe_get rows k in
    let v = Array.unsafe_get vals k in
    if v <> 0.0 then begin
      let binv = st.binv in
      for r = 0 to n - 1 do
        Array.unsafe_set d r
          (Array.unsafe_get d r +. (v *. Array.unsafe_get binv ((r * n) + col)))
      done
    end
  done

(* y = cB^T B^-1 where cB is given per basis position. *)
let btran st cb y =
  let n = n_of st in
  Array.fill y 0 n 0.0;
  for r = 0 to n - 1 do
    let c = Array.unsafe_get cb r in
    if c <> 0.0 then begin
      let binv = st.binv in
      let base = r * n in
      for j = 0 to n - 1 do
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (c *. Array.unsafe_get binv (base + j)))
      done
    end
  done

let reduced_cost st cost y c =
  let rows, vals = column st.p c in
  let acc = ref (cost c) in
  for k = 0 to Array.length rows - 1 do
    acc := !acc -. (Array.unsafe_get y (Array.unsafe_get rows k)
                    *. Array.unsafe_get vals k)
  done;
  !acc

(* Rebuild B^-1 by Gauss-Jordan with partial pivoting and recompute xb.
   Returns [false] when the basis matrix is singular. *)
let refactorize st =
  let n = n_of st in
  let aug = Array.make (n * 2 * n) 0.0 in
  (* left half: B; right half: I *)
  let w = 2 * n in
  for pos = 0 to n - 1 do
    let rows, vals = column st.p st.basis.(pos) in
    for k = 0 to Array.length rows - 1 do
      aug.((rows.(k) * w) + pos) <- vals.(k)
    done
  done;
  for r = 0 to n - 1 do
    aug.((r * w) + n + r) <- 1.0
  done;
  let ok = ref true in
  (try
     for c = 0 to n - 1 do
       (* partial pivot *)
       let best = ref c and bestv = ref (Float.abs aug.((c * w) + c)) in
       for r = c + 1 to n - 1 do
         let v = Float.abs aug.((r * w) + c) in
         if v > !bestv then begin
           best := r;
           bestv := v
         end
       done;
       if !bestv < 1e-12 then raise Exit;
       if !best <> c then
         for k = 0 to w - 1 do
           let t = aug.((c * w) + k) in
           aug.((c * w) + k) <- aug.((!best * w) + k);
           aug.((!best * w) + k) <- t
         done;
       let piv = aug.((c * w) + c) in
       for k = 0 to w - 1 do
         aug.((c * w) + k) <- aug.((c * w) + k) /. piv
       done;
       for r = 0 to n - 1 do
         if r <> c then begin
           let f = aug.((r * w) + c) in
           if f <> 0.0 then
             for k = 0 to w - 1 do
               aug.((r * w) + k) <- aug.((r * w) + k) -. (f *. aug.((c * w) + k))
             done
         end
       done
     done
   with Exit -> ok := false);
  if !ok then begin
    for r = 0 to n - 1 do
      for j = 0 to n - 1 do
        st.binv.((r * n) + j) <- aug.((r * w) + n + j)
      done
    done;
    (* xb = B^-1 rhs *)
    for r = 0 to n - 1 do
      let acc = ref 0.0 in
      let base = r * n in
      for j = 0 to n - 1 do
        acc := !acc +. (st.binv.(base + j) *. st.p.rhs.(j))
      done;
      st.xb.(r) <- !acc
    done
  end;
  !ok

(* Pivot: basis position [leave] is replaced by column [enter] whose ftran
   direction is [d]; [theta] is the step length. *)
let pivot st leave enter d theta =
  let n = n_of st in
  let dl = d.(leave) in
  let binv = st.binv in
  let base_l = leave * n in
  for k = 0 to n - 1 do
    Array.unsafe_set binv (base_l + k) (Array.unsafe_get binv (base_l + k) /. dl)
  done;
  for r = 0 to n - 1 do
    if r <> leave then begin
      let f = Array.unsafe_get d r in
      if f <> 0.0 then begin
        let base_r = r * n in
        for k = 0 to n - 1 do
          Array.unsafe_set binv (base_r + k)
            (Array.unsafe_get binv (base_r + k)
            -. (f *. Array.unsafe_get binv (base_l + k)))
        done
      end
    end
  done;
  for r = 0 to n - 1 do
    if r <> leave then st.xb.(r) <- st.xb.(r) -. (theta *. d.(r))
  done;
  st.xb.(leave) <- theta;
  st.in_basis.(st.basis.(leave)) <- false;
  st.in_basis.(enter) <- true;
  st.basis.(leave) <- enter;
  st.iterations <- st.iterations + 1;
  if theta <= feas_tol then begin
    st.degenerate_streak <- st.degenerate_streak + 1;
    if st.degenerate_streak > 60 then st.bland <- true
  end
  else begin
    st.degenerate_streak <- 0;
    st.bland <- false
  end

(* Entering-column selection.  [allowed c] restricts the candidate set (used
   to ban artificials in phase 2).  Partial pricing: scan from the rotating
   cursor, keep the most negative reduced cost seen, and stop early after a
   full block has been scanned with a viable candidate in hand.  In Bland
   mode: lowest-index negative column, full determinism. *)
let price st cost allowed y =
  let total = st.total in
  if st.bland then begin
    let found = ref (-1) in
    (try
       for c = 0 to total - 1 do
         if (not st.in_basis.(c)) && allowed c then begin
           let rc = reduced_cost st cost y c in
           if rc < -.opt_tol then begin
             found := c;
             raise Exit
           end
         end
       done
     with Exit -> ());
    !found
  end
  else begin
    let block = 512 in
    let best = ref (-1) and best_rc = ref (-.opt_tol) in
    let scanned = ref 0 in
    let c = ref st.cursor in
    (try
       while !scanned < total do
         let col = !c in
         if (not st.in_basis.(col)) && allowed col then begin
           let rc = reduced_cost st cost y col in
           if rc < !best_rc then begin
             best_rc := rc;
             best := col
           end
         end;
         incr scanned;
         c := !c + 1;
         if !c >= total then c := 0;
         if !scanned mod block = 0 && !best >= 0 then raise Exit
       done
     with Exit -> ());
    st.cursor <- !c;
    !best
  end

(* Ratio test.  Returns [None] when unbounded.  Prefers, among minimum-ratio
   rows, the largest pivot magnitude for stability; in Bland mode the
   smallest basic column index. *)
let ratio_test st d =
  let n = n_of st in
  let best_ratio = ref infinity in
  let leave = ref (-1) in
  for r = 0 to n - 1 do
    let dr = d.(r) in
    if dr > pivot_tol then begin
      let ratio = st.xb.(r) /. dr in
      let ratio = if ratio < 0.0 then 0.0 else ratio in
      if ratio < !best_ratio -. 1e-10 then begin
        best_ratio := ratio;
        leave := r
      end
      else if ratio <= !best_ratio +. 1e-10 && !leave >= 0 then begin
        let better =
          if st.bland then st.basis.(r) < st.basis.(!leave)
          else Float.abs dr > Float.abs d.(!leave)
        in
        if better then begin
          if ratio < !best_ratio then best_ratio := ratio;
          leave := r
        end
      end
    end
  done;
  if !leave = -1 then None else Some (!leave, !best_ratio)

type phase_outcome = P_optimal | P_unbounded | P_limit | P_deadline

(* The deadline is wall-clock-ish (Sys.time, so CPU seconds): checked every
   32 pivots to keep the clock read off the pivot hot path, and once before
   the very first pivot so a zero deadline aborts immediately. *)
let past_deadline st stop_at =
  match stop_at with
  | None -> false
  | Some t -> st.iterations land 31 = 0 && Sys.time () >= t

let run_phase st cost allowed ~max_iterations ~refactor ~stop_at =
  let n = n_of st in
  let y = Array.make n 0.0 in
  let cb = Array.make n 0.0 in
  let d = Array.make n 0.0 in
  let rec loop () =
    if st.iterations >= max_iterations then P_limit
    else if past_deadline st stop_at then P_deadline
    else begin
      if st.iterations > 0 && st.iterations mod refactor = 0 then
        if not (refactorize st) then
          failwith "Revised_simplex: basis became singular";
      for r = 0 to n - 1 do
        cb.(r) <- cost st.basis.(r)
      done;
      btran st cb y;
      let enter = price st cost allowed y in
      if enter < 0 then P_optimal
      else begin
        ftran st (column st.p enter) d;
        match ratio_test st d with
        | None -> P_unbounded
        | Some (leave, theta) ->
          pivot st leave enter d theta;
          loop ()
      end
    end
  in
  loop ()

let make_state p =
  let n = p.nrows in
  let total = p.ncols + (2 * n) in
  let binv = Array.make (n * n) 0.0 in
  for r = 0 to n - 1 do
    binv.((r * n) + r) <- 1.0
  done;
  { p;
    total;
    basis = Array.make n (-1);
    in_basis = Array.make total false;
    binv;
    xb = Array.copy p.rhs;
    iterations = 0;
    degenerate_streak = 0;
    bland = false;
    cursor = 0;
  }

(* Default phase-1 start: slack where the slack sign is +1, artificial
   otherwise. *)
let install_cold_basis st =
  let p = st.p in
  Array.fill st.in_basis 0 st.total false;
  for r = 0 to p.nrows - 1 do
    let c = if p.slack_sign.(r) = 1.0 then p.ncols + r else p.ncols + p.nrows + r in
    st.basis.(r) <- c;
    st.in_basis.(c) <- true
  done;
  let n = p.nrows in
  Array.fill st.binv 0 (n * n) 0.0;
  for r = 0 to n - 1 do
    st.binv.((r * n) + r) <- 1.0
  done;
  Array.blit p.rhs 0 st.xb 0 n

let try_warm_basis st (wb : warm_basis) =
  let p = st.p in
  if Array.length wb <> p.nrows then false
  else begin
    let ok = ref true in
    Array.fill st.in_basis 0 st.total false;
    Array.iteri
      (fun r c ->
        let col =
          if c = -1 then
            if p.slack_sign.(r) = 0.0 then -2 (* equality row has no slack *)
            else p.ncols + r
          else if c >= 0 && c < p.ncols then c
          else -2
        in
        if col = -2 || (col >= 0 && st.in_basis.(col)) then ok := false
        else begin
          st.basis.(r) <- col;
          st.in_basis.(col) <- true
        end)
      wb;
    if not !ok then false
    else if not (refactorize st) then false
    else Array.for_all (fun v -> v >= -.feas_tol) st.xb
  end

let artificial_start st = st.p.ncols + st.p.nrows

(* After phase 1: pivot zero-level artificials out of the basis wherever a
   non-artificial column has a non-zero coefficient in their row of
   B^-1 A. *)
let expel_artificials st =
  let p = st.p in
  let n = p.nrows in
  let first_art = artificial_start st in
  for pos = 0 to n - 1 do
    if st.basis.(pos) >= first_art then begin
      let found = ref (-1) and dval = ref 0.0 in
      let c = ref 0 in
      while !found < 0 && !c < first_art do
        if not st.in_basis.(!c) then begin
          (* element [pos] of B^-1 A_c *)
          let rows, vals = column p !c in
          let acc = ref 0.0 in
          for k = 0 to Array.length rows - 1 do
            acc := !acc +. (st.binv.((pos * n) + rows.(k)) *. vals.(k))
          done;
          if Float.abs !acc > 1e-7 then begin
            found := !c;
            dval := !acc
          end
        end;
        incr c
      done;
      (* [-1] means the row is redundant; the artificial stays basic at
         zero and phase 2 never lets it grow. *)
      if !found >= 0 then begin
        let c = !found in
        let d = Array.make n 0.0 in
        ftran st (column p c) d;
        pivot st pos c d st.xb.(pos)
      end
    end
  done

let solve ?(max_iterations = 200_000) ?deadline ?warm_basis ?(refactor = 256)
    model =
  let stop_at =
    match deadline with
    | None -> None
    | Some d ->
      if d < 0.0 then invalid_arg "Revised_simplex.solve: negative deadline";
      Some (Sys.time () +. d)
  in
  let std = Std_form.of_model model in
  let p = normalise std in
  let st = make_state p in
  let first_art = artificial_start st in
  let warm_ok =
    match warm_basis with
    | Some wb ->
      let ok = try_warm_basis st wb in
      if not ok then
        Log.warn (fun f -> f "warm basis rejected; falling back to phase 1");
      ok
    | None -> false
  in
  (* Multipliers of the original rows: y = cB^T B^-1 in the normalised
     space, unflipped, and negated back when the model maximised. *)
  let compute_duals () =
    let n = p.nrows in
    let cb = Array.make n 0.0 in
    Array.iteri
      (fun r c -> cb.(r) <- (if c < p.ncols then p.obj.(c) else 0.0))
      st.basis;
    let y = Array.make n 0.0 in
    btran st cb y;
    Array.mapi
      (fun r yr ->
        let yr = if p.flipped.(r) then -.yr else yr in
        if std.Std_form.maximize then -.yr else yr)
      y
  in
  let finish status =
    let values = Array.make p.ncols 0.0 in
    Array.iteri
      (fun r c -> if c < p.ncols then values.(c) <- max 0.0 st.xb.(r))
      st.basis;
    { Solution.status;
      objective = Std_form.objective_value std values;
      values;
      iterations = st.iterations;
      duals =
        (if status = Solution.Optimal then Some (compute_duals ()) else None);
    }
  in
  let infeasible () =
    { Solution.status = Solution.Infeasible;
      objective = nan;
      values = Array.make p.ncols 0.0;
      iterations = st.iterations;
      duals = None;
    }
  in
  let phase2 () =
    let cost c = if c < p.ncols then p.obj.(c) else 0.0 in
    let allowed c = c < first_art in
    st.bland <- false;
    st.degenerate_streak <- 0;
    match run_phase st cost allowed ~max_iterations ~refactor ~stop_at with
    | P_optimal -> finish Solution.Optimal
    | P_limit -> finish Solution.Iteration_limit
    | P_deadline -> finish Solution.Time_limit
    | P_unbounded ->
      { Solution.status = Solution.Unbounded;
        objective = (if std.Std_form.maximize then infinity else neg_infinity);
        values = Array.make p.ncols 0.0;
        iterations = st.iterations;
        duals = None;
      }
  in
  if warm_ok then phase2 ()
  else begin
    install_cold_basis st;
    let any_artificial =
      Array.exists (fun c -> c >= first_art) st.basis
    in
    if not any_artificial then phase2 ()
    else begin
      let cost c = if c >= first_art then 1.0 else 0.0 in
      let allowed _ = true in
      match run_phase st cost allowed ~max_iterations ~refactor ~stop_at with
      | P_limit -> finish Solution.Iteration_limit
      | P_deadline -> finish Solution.Time_limit
      | P_unbounded -> assert false (* phase 1 is bounded below by 0 *)
      | P_optimal ->
        let level = ref 0.0 in
        Array.iteri
          (fun r c -> if c >= first_art then level := !level +. st.xb.(r))
          st.basis;
        if !level > 1e-6 then infeasible ()
        else begin
          expel_artificials st;
          phase2 ()
        end
    end
  end
