type status = Optimal | Infeasible | Unbounded | Iteration_limit | Time_limit

type t = {
  status : status;
  objective : float;
  values : float array;
  iterations : int;
  refactors : int;
  duals : float array option;
  basis : int array option;
}

let value t v = t.values.((v : Model.var :> int))

let status_to_string = function
  | Optimal -> "optimal"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Iteration_limit -> "iteration-limit"
  | Time_limit -> "time-limit"

let pp ppf t =
  Format.fprintf ppf "%s: obj=%g (%d iterations, %d refactors)"
    (status_to_string t.status) t.objective t.iterations t.refactors
