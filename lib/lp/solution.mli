(** Result of a solve, shared by all solver back ends. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit
      (** The solver hit its iteration budget; [values] holds the best
          feasible point found (phase-2 iterates are always feasible). *)
  | Time_limit
      (** The solver hit its wall-clock deadline (see
          {!Revised_simplex.solve}); like [Iteration_limit], [values] holds
          the best feasible point found so far. *)

type t = {
  status : status;
  objective : float;
      (** Objective of the original model (maximization sign restored);
          meaningful for [Optimal] and [Iteration_limit]. *)
  values : float array; (** One value per model variable. *)
  iterations : int;
  refactors : int;
      (** Number of basis (re)factorizations performed, including the initial
          one; [0] for solvers without a factored basis (e.g.
          {!Dense_simplex}). *)
  duals : float array option;
      (** One multiplier per original constraint row, when the solver
          computed them (currently {!Revised_simplex} at [Optimal]).  Signs
          follow the original row orientation, so strong duality reads
          [sum_r duals.(r) * rhs_r = objective] for models with a zero
          objective constant; see the solver documentation. *)
  basis : int array option;
      (** The final basis in {!Revised_simplex.warm_basis} format (one entry
          per constraint row: structural variable index, or [-1] for the
          row's own slack), suitable for warm-starting a related solve.
          [None] when an artificial remained basic, when the solve did not
          finish cleanly, or for solvers that do not export a basis. *)
}

val value : t -> Model.var -> float

val status_to_string : status -> string

val pp : Format.formatter -> t -> unit
