(** Revised primal simplex with an explicitly maintained basis inverse.

    Designed for the interval-indexed coflow relaxations: thousands of sparse
    columns, a few thousand rows.  The inverse is updated in place by the
    usual product-form row operations and rebuilt from scratch every
    [refactor] pivots to bound numerical drift.  Pricing is partial (block
    scans with a rotating cursor); a streak of degenerate pivots switches the
    rule to Bland's until progress resumes, which guarantees termination.

    A warm-start basis can be supplied to skip phase 1 entirely; the coflow
    LP builder uses the crash basis "every coflow finishes in the last
    interval". *)

type warm_basis = int array
(** One entry per constraint row: a structural variable index to make basic
    on that row, or [-1] to use the row's own slack (only valid for
    inequality rows).  The proposed basis is verified — non-singularity and
    primal feasibility — and silently discarded in favour of a cold phase-1
    start if the check fails. *)

val solve :
  ?max_iterations:int ->
  ?deadline:float ->
  ?warm_basis:warm_basis ->
  ?refactor:int ->
  Model.t ->
  Solution.t
(** [solve m] minimises (or maximises) the model.  [max_iterations] defaults
    to [200_000] pivots across both phases; [refactor] (default [256]) is the
    inverse-rebuild period.

    [deadline] is a real-time budget in seconds for the whole solve (both
    phases), checked every 32 pivots: when it expires the solver stops with
    {!Solution.Time_limit} and the best basis found so far.  A deadline of
    [0.] aborts before the first pivot — the hook the resilient scheduling
    loop uses to model a solver outage.  @raise Invalid_argument if
    negative.

    At [Optimal] the solution carries the dual multipliers of every original
    row, oriented so that strong duality reads
    [sum_r duals.(r) * rhs.(r) = objective - objective_constant] and
    complementary slackness holds: a row with a non-zero multiplier is tight
    at the optimum. *)
