(** Revised primal simplex on a product-form factored basis.

    Designed for the interval-indexed coflow relaxations: thousands of sparse
    columns, a few thousand rows.  The basis inverse is never formed.  At
    (re)factorization time a Markowitz-ordered sparse LU of the basis matrix
    is computed; between refactorizations each pivot appends one eta vector
    (product-form update), and FTRAN/BTRAN apply the factors plus the eta
    file, so per-iteration cost tracks factor fill rather than [nrows^2].
    The factors are rebuilt whenever the eta file reaches [refactor] entries
    or an update pivot looks numerically fragile; the rebuild also recomputes
    the basic solution from scratch, absorbing (and logging) any drift.

    Pricing is partial (block scans with a rotating cursor) against the
    sparse BTRAN duals; a streak of degenerate pivots switches the rule to
    Bland's until progress resumes, which guarantees termination.

    A warm-start basis can be supplied to skip phase 1 entirely; the coflow
    LP builder uses the crash basis "every coflow finishes in the last
    interval". *)

type warm_basis = int array
(** One entry per constraint row: a structural variable index to make basic
    on that row, or [-1] to use the row's own slack (only valid for
    inequality rows).  The proposed basis is verified — non-singularity and
    primal feasibility — and silently discarded in favour of the next start
    ([crash_basis], then a cold phase-1 start) if the check fails.  Only the
    set of columns matters: permuting entries across rows describes the same
    basis matrix. *)

val solve :
  ?max_iterations:int ->
  ?deadline:float ->
  ?warm_basis:warm_basis ->
  ?crash_basis:warm_basis ->
  ?refactor:int ->
  Model.t ->
  Solution.t
(** [solve m] minimises (or maximises) the model.  [max_iterations] defaults
    to [200_000] pivots across both phases; [refactor] (default [128]) bounds
    the eta-file length between factorizations.

    [warm_basis] is tried first, then [crash_basis]; each is validated and
    the first that yields a factorizable, primal-feasible basis skips
    phase 1.  The returned {!Solution.t} carries the final basis (in the same
    format) and the factorization count, enabling warm-start chains across
    related solves.

    [deadline] is a real-time budget in seconds for the whole solve (both
    phases), checked every 32 pivots: when it expires the solver stops with
    {!Solution.Time_limit} and the best basis found so far.  A deadline of
    [0.] aborts before the first pivot — the hook the resilient scheduling
    loop uses to model a solver outage.  @raise Invalid_argument if
    negative.

    At [Optimal] the solution carries the dual multipliers of every original
    row, oriented so that strong duality reads
    [sum_r duals.(r) * rhs.(r) = objective - objective_constant] and
    complementary slackness holds: a row with a non-zero multiplier is tight
    at the optimum. *)
