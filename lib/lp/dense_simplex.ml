(* Two-phase full-tableau simplex with Bland's rule.

   Column layout: [0 .. ncols-1] structural variables, then one slack or
   surplus column per inequality row, then one artificial column per row that
   needs it.  Rows are normalised so that every right-hand side is
   non-negative before the artificial columns are chosen. *)

let feas_tol = 1e-9

let solve ?(max_iterations = 100_000) model =
  let std = Std_form.of_model model in
  let nrows = std.Std_form.nrows and ncols = std.Std_form.ncols in
  (* Dense copy of A with rows normalised to rhs >= 0. *)
  let a = Array.make_matrix nrows ncols 0.0 in
  for v = 0 to ncols - 1 do
    let rows = std.Std_form.col_rows.(v) and vals = std.Std_form.col_vals.(v) in
    for k = 0 to Array.length rows - 1 do
      a.(rows.(k)).(v) <- vals.(k)
    done
  done;
  let rhs = Array.copy std.Std_form.rhs in
  let senses = Array.copy std.Std_form.senses in
  for r = 0 to nrows - 1 do
    if rhs.(r) < 0.0 then begin
      rhs.(r) <- -.rhs.(r);
      for v = 0 to ncols - 1 do
        a.(r).(v) <- -.a.(r).(v)
      done;
      senses.(r) <-
        (match senses.(r) with
        | Std_form.Le -> Std_form.Ge
        | Std_form.Ge -> Std_form.Le
        | Std_form.Eq -> Std_form.Eq)
    end
  done;
  (* Assign slack/surplus columns, then artificials. *)
  let slack_of = Array.make nrows (-1) in
  let next = ref ncols in
  for r = 0 to nrows - 1 do
    match senses.(r) with
    | Std_form.Le | Std_form.Ge ->
      slack_of.(r) <- !next;
      incr next
    | Std_form.Eq -> ()
  done;
  let art_of = Array.make nrows (-1) in
  let first_art = !next in
  for r = 0 to nrows - 1 do
    let needs_artificial =
      match senses.(r) with
      | Std_form.Le -> false (* +1 slack is a valid basic column *)
      | Std_form.Ge | Std_form.Eq -> true
    in
    if needs_artificial then begin
      art_of.(r) <- !next;
      incr next
    end
  done;
  let total = !next in
  (* tableau.(r) has [total] coefficient entries plus the rhs at index
     [total]. *)
  let tab = Array.make_matrix nrows (total + 1) 0.0 in
  for r = 0 to nrows - 1 do
    Array.blit a.(r) 0 tab.(r) 0 ncols;
    if slack_of.(r) >= 0 then
      tab.(r).(slack_of.(r)) <-
        (match senses.(r) with
        | Std_form.Le -> 1.0
        | Std_form.Ge -> -1.0
        | Std_form.Eq -> assert false);
    if art_of.(r) >= 0 then tab.(r).(art_of.(r)) <- 1.0;
    tab.(r).(total) <- rhs.(r)
  done;
  let basis =
    Array.init nrows (fun r ->
        if art_of.(r) >= 0 then art_of.(r) else slack_of.(r))
  in
  let iterations = ref 0 in
  let pivot r c =
    let piv = tab.(r).(c) in
    let row = tab.(r) in
    for k = 0 to total do
      row.(k) <- row.(k) /. piv
    done;
    for r' = 0 to nrows - 1 do
      if r' <> r then begin
        let f = tab.(r').(c) in
        if f <> 0.0 then begin
          let row' = tab.(r') in
          for k = 0 to total do
            row'.(k) <- row'.(k) -. (f *. row.(k))
          done;
          row'.(c) <- 0.0
        end
      end
    done;
    basis.(r) <- c
  in
  (* Reduced costs for cost vector [c] (length [total]) under the current
     basis, computed from scratch — O(rows * cols), fine at this scale. *)
  let reduced_costs c =
    let y = Array.make nrows 0.0 in
    (* Because the tableau is kept in canonical form, the basic columns are
       unit vectors; the multipliers are just the basic costs. *)
    for r = 0 to nrows - 1 do
      y.(r) <- c.(basis.(r))
    done;
    let rc = Array.make total 0.0 in
    for v = 0 to total - 1 do
      let acc = ref c.(v) in
      for r = 0 to nrows - 1 do
        if y.(r) <> 0.0 then acc := !acc -. (y.(r) *. tab.(r).(v))
      done;
      rc.(v) <- !acc
    done;
    rc
  in
  (* One phase of Bland-rule simplex over the columns allowed by [allowed].
     Returns [`Optimal], [`Unbounded] or [`Limit]. *)
  let run_phase cost allowed =
    let rec loop () =
      if !iterations >= max_iterations then `Limit
      else begin
        let rc = reduced_costs cost in
        let entering = ref (-1) in
        (for v = 0 to total - 1 do
           if !entering = -1 && allowed v && rc.(v) < -.feas_tol then
             entering := v
         done);
        if !entering = -1 then `Optimal
        else begin
          let c = !entering in
          (* Bland leaving rule: among rows attaining the minimum ratio,
             choose the one whose basic variable has the smallest index. *)
          let best_ratio = ref infinity and leave = ref (-1) in
          for r = 0 to nrows - 1 do
            let coeff = tab.(r).(c) in
            if coeff > feas_tol then begin
              let ratio = tab.(r).(total) /. coeff in
              if
                ratio < !best_ratio -. feas_tol
                || (ratio < !best_ratio +. feas_tol
                   && (!leave = -1 || basis.(r) < basis.(!leave)))
              then begin
                best_ratio := ratio;
                leave := r
              end
            end
          done;
          if !leave = -1 then `Unbounded
          else begin
            incr iterations;
            pivot !leave c;
            loop ()
          end
        end
      end
    in
    loop ()
  in
  let finish status =
    let values = Array.make ncols 0.0 in
    for r = 0 to nrows - 1 do
      if basis.(r) < ncols then values.(basis.(r)) <- tab.(r).(total)
    done;
    let objective = Std_form.objective_value std values in
    { Solution.status; objective; values; iterations = !iterations;
      refactors = 0; duals = None; basis = None }
  in
  (* Phase 1: minimise the sum of artificials, if any exist. *)
  let phase1_needed = first_art < total in
  let phase1_result =
    if not phase1_needed then `Optimal
    else begin
      let cost = Array.make total 0.0 in
      for v = first_art to total - 1 do
        cost.(v) <- 1.0
      done;
      run_phase cost (fun _ -> true)
    end
  in
  match phase1_result with
  | `Limit -> finish Solution.Iteration_limit
  | `Unbounded ->
    (* Phase 1 is bounded below by 0; this cannot happen. *)
    assert false
  | `Optimal ->
    let artificial_level =
      let acc = ref 0.0 in
      for r = 0 to nrows - 1 do
        if basis.(r) >= first_art then acc := !acc +. tab.(r).(total)
      done;
      !acc
    in
    if phase1_needed && artificial_level > 1e-7 then
      { Solution.status = Solution.Infeasible;
        objective = nan;
        values = Array.make ncols 0.0;
        iterations = !iterations;
        refactors = 0;
        duals = None;
        basis = None;
      }
    else begin
      (* Drive zero-level artificials out of the basis where possible. *)
      for r = 0 to nrows - 1 do
        if basis.(r) >= first_art then begin
          let c = ref (-1) in
          for v = 0 to first_art - 1 do
            if !c = -1 && Float.abs tab.(r).(v) > 1e-7 then c := v
          done;
          if !c >= 0 then pivot r !c
          (* otherwise the row is redundant; the artificial stays basic at
             level zero and is never allowed to re-enter with positive
             value because phase 2 forbids artificial columns. *)
        end
      done;
      let cost = Array.make total 0.0 in
      Array.blit std.Std_form.obj 0 cost 0 ncols;
      let allowed v = v < first_art in
      match run_phase cost allowed with
      | `Optimal -> finish Solution.Optimal
      | `Unbounded ->
        { Solution.status = Solution.Unbounded;
          objective = (if std.Std_form.maximize then infinity else neg_infinity);
          values = Array.make ncols 0.0;
          iterations = !iterations;
          refactors = 0;
          duals = None;
          basis = None;
        }
      | `Limit -> finish Solution.Iteration_limit
    end
