(* Sparse nonnegative integer matrix mirroring the [Mat] API.

   Each row is an ordered (column -> value) map holding only strictly
   positive entries; row sums, column sums, the nonzero count and the grand
   total are maintained incrementally, so the per-update cost is
   O(log row_nnz) and every aggregate query is O(1) (O(m) for [load]).

   Iteration order is the contract that makes this module a drop-in for
   [Mat] in the scheduling hot paths: [iter_nonzero] visits entries in
   row-major order (row ascending, then column ascending), exactly the
   order [Mat.iter_nonzero] visits its dense array, so greedy matchings and
   BvN decompositions built over either representation are identical. *)

module Imap = Map.Make (Int)

type t = {
  m : int;
  words : int; (* Bits.words_for m *)
  rows : int Imap.t array; (* rows.(i): col -> value, values > 0 *)
  row_sums : int array;
  col_sums : int array;
  live_bits : int array; (* bit i set iff row i has a nonzero *)
  row_bits : int array array; (* row_bits.(i): column-support bitset *)
  mutable nnz : int;
  mutable total : int;
}

let make m =
  if m <= 0 then invalid_arg "Smat.make: dimension must be positive";
  let words = Bits.words_for m in
  { m;
    words;
    rows = Array.make m Imap.empty;
    row_sums = Array.make m 0;
    col_sums = Array.make m 0;
    live_bits = Array.make words 0;
    row_bits = Array.init m (fun _ -> Array.make words 0);
    nnz = 0;
    total = 0;
  }

let dim d = d.m

let check_index d i j =
  if i < 0 || i >= d.m || j < 0 || j >= d.m then
    invalid_arg
      (Printf.sprintf "Smat: index (%d, %d) out of range for %dx%d matrix" i j
         d.m d.m)

let get d i j =
  check_index d i j;
  match Imap.find_opt j d.rows.(i) with Some v -> v | None -> 0

(* The single mutation bottleneck: put value [v] (>= 0) at (i, j) and keep
   every aggregate in sync. *)
let put d i j v =
  let old = match Imap.find_opt j d.rows.(i) with Some o -> o | None -> 0 in
  if v <> old then begin
    d.rows.(i) <-
      (if v = 0 then Imap.remove j d.rows.(i) else Imap.add j v d.rows.(i));
    let was_live = d.row_sums.(i) > 0 in
    d.row_sums.(i) <- d.row_sums.(i) + v - old;
    d.col_sums.(j) <- d.col_sums.(j) + v - old;
    d.total <- d.total + v - old;
    if old = 0 then begin
      d.nnz <- d.nnz + 1;
      let w = Bits.word_of j in
      d.row_bits.(i).(w) <- d.row_bits.(i).(w) lor (1 lsl Bits.bit_of j)
    end;
    if v = 0 then begin
      d.nnz <- d.nnz - 1;
      let w = Bits.word_of j in
      d.row_bits.(i).(w) <- d.row_bits.(i).(w) land lnot (1 lsl Bits.bit_of j)
    end;
    let is_live = d.row_sums.(i) > 0 in
    if is_live && not was_live then begin
      let w = Bits.word_of i in
      d.live_bits.(w) <- d.live_bits.(w) lor (1 lsl Bits.bit_of i)
    end
    else if was_live && not is_live then begin
      let w = Bits.word_of i in
      d.live_bits.(w) <- d.live_bits.(w) land lnot (1 lsl Bits.bit_of i)
    end
  end

let set d i j v =
  check_index d i j;
  if v < 0 then invalid_arg "Smat.set: negative entry";
  put d i j v

let add_entry d i j dv =
  check_index d i j;
  let r = get d i j + dv in
  if r < 0 then invalid_arg "Smat.add_entry: entry would become negative";
  put d i j r

let copy d =
  { m = d.m;
    words = d.words;
    rows = Array.copy d.rows;
    row_sums = Array.copy d.row_sums;
    col_sums = Array.copy d.col_sums;
    live_bits = Array.copy d.live_bits;
    row_bits = Array.map Array.copy d.row_bits;
    nnz = d.nnz;
    total = d.total;
  }

let row_sum d i =
  if i < 0 || i >= d.m then invalid_arg "Smat.row_sum: index out of range";
  d.row_sums.(i)

let col_sum d j =
  if j < 0 || j >= d.m then invalid_arg "Smat.col_sum: index out of range";
  d.col_sums.(j)

let row_sums d = Array.copy d.row_sums

let col_sums d = Array.copy d.col_sums

let total d = d.total

let nonzero_count d = d.nnz

let is_zero d = d.nnz = 0

let row_nnz d i =
  if i < 0 || i >= d.m then invalid_arg "Smat.row_nnz: index out of range";
  Imap.cardinal d.rows.(i)

let load d =
  let best = ref 0 in
  for p = 0 to d.m - 1 do
    if d.row_sums.(p) > !best then best := d.row_sums.(p);
    if d.col_sums.(p) > !best then best := d.col_sums.(p)
  done;
  !best

(* row-major, column-ascending: the same order as [Mat.iter_nonzero] *)
let iter_nonzero f d =
  for i = 0 to d.m - 1 do
    Imap.iter (fun j v -> f i j v) d.rows.(i)
  done

let iter_row d i f =
  if i < 0 || i >= d.m then invalid_arg "Smat.iter_row: index out of range";
  Imap.iter f d.rows.(i)

(* column-ascending sequence of one row's nonzeros; used by consumers that
   need early exit (e.g. Kuhn augmentation over the support) *)
let row_seq d i =
  if i < 0 || i >= d.m then invalid_arg "Smat.row_seq: index out of range";
  Imap.to_seq d.rows.(i)

(* first nonzero of row [i] in a column >= [min_col]; lets matching loops
   leapfrog a run of unavailable columns in one O(log nnz) probe instead
   of walking the row entry by entry *)
let row_next d i ~min_col =
  if i < 0 || i >= d.m then invalid_arg "Smat.row_next: index out of range";
  Imap.find_first_opt (fun j -> j >= min_col) d.rows.(i)

(* bitset views: one word of the live-row set / of one row's column
   support.  Matching loops intersect these with free-port bitsets, so a
   single [land] stands in for a scan over up to 62 ports. *)
let bit_words d = d.words

let live_mask d w = d.live_bits.(w)

let row_mask d i w = d.row_bits.(i).(w)

(* first row with any nonzero at index >= [min_row]; the live-row bitset
   is maintained incrementally by [put], so sparse consumers can iterate
   a nearly-drained matrix in O(live rows + words) instead of O(m) *)
let next_row d ~min_row =
  if min_row >= d.m then None
  else begin
    let rec go w mask =
      if w >= d.words then None
      else begin
        let bits = d.live_bits.(w) land mask in
        if bits = 0 then go (w + 1) (lnot 0)
        else Some ((w * Bits.bits_per_word) + Bits.ntz (bits land -bits))
      end
    in
    go (Bits.word_of min_row) (lnot (Bits.low_mask (Bits.bit_of min_row)))
  end

let live_rows d =
  Array.fold_left (fun acc w -> acc + Bits.popcount w) 0 d.live_bits

let fold_nonzero f init d =
  let acc = ref init in
  iter_nonzero (fun i j v -> acc := f !acc i j v) d;
  !acc

let equal a b =
  a.m = b.m && a.nnz = b.nnz && a.total = b.total
  && Array.for_all2 (Imap.equal Int.equal) a.rows b.rows

let of_dense d =
  let s = make (Mat.dim d) in
  Mat.iter_nonzero (fun i j v -> put s i j v) d;
  s

let to_dense s =
  let d = Mat.make s.m in
  iter_nonzero (fun i j v -> Mat.set d i j v) s;
  d

let pp ppf d = Mat.pp ppf (to_dense d)

let to_string d = Format.asprintf "%a" pp d
