(* Bit-twiddling helpers for bitsets packed into native OCaml ints.

   A word carries [bits_per_word] = 62 payload bits (bits 0..61), so
   [(1 lsl n) - 1] is well-defined for every partial word and the sign
   bit is never touched: words can be compared with [<> 0] and combined
   with [land]/[lor]/[lnot] without overflow surprises on 63-bit ints. *)

let bits_per_word = 62

let words_for n = (n + bits_per_word - 1) / bits_per_word

let word_of b = b / bits_per_word

let bit_of b = b mod bits_per_word

(* mask with the [n] low bits set, 0 <= n <= bits_per_word *)
let low_mask n = if n = 0 then 0 else (1 lsl n) - 1

(* number of trailing zeros; [x] must be nonzero with only payload bits
   set.  Unrolled binary search: ~6 branch-free steps, no table. *)
let ntz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0
