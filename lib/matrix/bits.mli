(** Helpers for bitsets packed into native OCaml ints, 62 payload bits
    per word (the sign bit is never used, so words are safe under
    [land]/[lor]/[lnot] and [<> 0] tests).  {!Smat} maintains per-row
    column-support bitsets and a live-row bitset in this layout; matching
    loops intersect them with free-port bitsets so one [land] replaces a
    scan over up to 62 ports. *)

val bits_per_word : int
(** 62. *)

val words_for : int -> int
(** [words_for n] — words needed for an [n]-bit set. *)

val word_of : int -> int
(** Word index holding bit [b]. *)

val bit_of : int -> int
(** Position of bit [b] within its word. *)

val low_mask : int -> int
(** [low_mask n] — word with the [n] low bits set;
    [0 <= n <= bits_per_word]. *)

val ntz : int -> int
(** Number of trailing zeros of a nonzero word: the index of its lowest
    set bit, i.e. the first element of the set it encodes. *)

val popcount : int -> int
(** Number of set bits. *)
